// Command scada-sim replays an attack/contingency scenario against a
// SCADA configuration and prints the dependability timeline: delivered
// and secured measurement counts, observability, secured observability
// and 1-bad-data detectability at every sample, plus availability
// aggregates.
//
// Usage:
//
//	scada-sim -config system.scada -scenario campaign.json
//	scada-sim -config system.scada -dos 9,12 -at 2s -outage 5s
//
// The scenario file format:
//
//	{
//	  "name": "substation outage",
//	  "horizonSeconds": 30,
//	  "stepSeconds": 1,
//	  "events": [
//	    {"atSeconds": 5, "kind": "device-down", "device": 9},
//	    {"atSeconds": 12, "kind": "device-up", "device": 9},
//	    {"atSeconds": 8, "kind": "link-down", "link": 3}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"scadaver/internal/attacksim"
	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/scadanet"
	"scadaver/internal/version"
)

// scenarioFile is the JSON scenario schema.
type scenarioFile struct {
	Name           string      `json:"name"`
	HorizonSeconds float64     `json:"horizonSeconds"`
	StepSeconds    float64     `json:"stepSeconds"`
	Events         []eventFile `json:"events"`
}

type eventFile struct {
	AtSeconds float64 `json:"atSeconds"`
	Kind      string  `json:"kind"`
	Device    int     `json:"device,omitempty"`
	Link      int     `json:"link,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scada-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scada-sim", flag.ContinueOnError)
	var (
		configPath   = fs.String("config", "", "path to a .scada configuration (required)")
		scenarioPath = fs.String("scenario", "", "path to a JSON scenario file")
		dos          = fs.String("dos", "", "comma-separated device IDs for a DoS burst (alternative to -scenario)")
		at           = fs.Duration("at", 2*time.Second, "DoS burst start")
		outage       = fs.Duration("outage", 5*time.Second, "DoS burst duration")
		horizon      = fs.Duration("horizon", 10*time.Second, "DoS scenario horizon")
		step         = fs.Duration("step", time.Second, "sampling step")
		metricsOut   = fs.String("metrics", "", "write run metrics (build info) to this file (.json extension = JSON, otherwise Prometheus text)")
		showVer      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVer {
		fmt.Fprintln(out, version.String())
		return nil
	}
	if *configPath == "" {
		fs.Usage()
		return fmt.Errorf("-config is required")
	}
	if *metricsOut != "" {
		_, _, closeObs, err := obs.Setup("scada-sim", "", *metricsOut, "")
		if err != nil {
			return err
		}
		defer closeObs() //nolint:errcheck // metrics export is best-effort
	}

	f, err := os.Open(*configPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, err := scadanet.ParseConfig(f)
	if err != nil {
		return err
	}

	var sc attacksim.Scenario
	switch {
	case *scenarioPath != "":
		sc, err = loadScenario(*scenarioPath)
		if err != nil {
			return err
		}
	case *dos != "":
		var targets []scadanet.DeviceID
		for _, tok := range strings.Split(*dos, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad device ID %q in -dos", tok)
			}
			targets = append(targets, scadanet.DeviceID(id))
		}
		sc = attacksim.DoSBurst("dos", targets, *at, *outage, *horizon, *step)
	default:
		return fmt.Errorf("one of -scenario or -dos is required")
	}

	sim, err := attacksim.New(cfg)
	if err != nil {
		return err
	}
	tl, err := sim.Run(sc)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scenario %q: %d samples\n", tl.Scenario, len(tl.Samples))
	fmt.Fprintf(out, "%-8s %-16s %-10s %-8s %-6s %-8s %-8s\n",
		"t", "down", "delivered", "secured", "obs", "sec-obs", "baddata")
	for _, s := range tl.Samples {
		down := "-"
		if len(s.DownDevices)+len(s.DownLinks) > 0 {
			parts := make([]string, 0, len(s.DownDevices)+len(s.DownLinks))
			for _, d := range s.DownDevices {
				parts = append(parts, strconv.Itoa(int(d)))
			}
			for _, l := range s.DownLinks {
				parts = append(parts, "L"+strconv.Itoa(int(l)))
			}
			down = strings.Join(parts, ",")
		}
		fmt.Fprintf(out, "%-8v %-16s %-10d %-8d %-6v %-8v %-8v\n",
			s.At, down, s.Delivered, s.Secured, s.Observable, s.SecurelyObservable, s.BadDataDetectable1)
	}
	fmt.Fprintf(out, "availability: observability %.1f%%, secured %.1f%%, 1-bad-data %.1f%%\n",
		100*tl.Availability(core.Observability),
		100*tl.Availability(core.SecuredObservability),
		100*tl.Availability(core.BadDataDetectability))
	fmt.Fprintf(out, "worst concurrent device failures: %d\n", tl.WorstConcurrentFailures())
	return nil
}

func loadScenario(path string) (attacksim.Scenario, error) {
	var sc attacksim.Scenario
	data, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	var sf scenarioFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return sc, fmt.Errorf("scenario %s: %w", path, err)
	}
	sc.Name = sf.Name
	sc.Horizon = time.Duration(sf.HorizonSeconds * float64(time.Second))
	sc.Step = time.Duration(sf.StepSeconds * float64(time.Second))
	for _, e := range sf.Events {
		ev := attacksim.Event{
			At:     time.Duration(e.AtSeconds * float64(time.Second)),
			Device: scadanet.DeviceID(e.Device),
			Link:   scadanet.LinkID(e.Link),
		}
		switch e.Kind {
		case "device-down":
			ev.Kind = attacksim.DeviceDown
		case "device-up":
			ev.Kind = attacksim.DeviceUp
		case "link-down":
			ev.Kind = attacksim.LinkDown
		case "link-up":
			ev.Kind = attacksim.LinkUp
		default:
			return sc, fmt.Errorf("scenario %s: unknown event kind %q", path, e.Kind)
		}
		sc.Events = append(sc.Events, ev)
	}
	return sc, nil
}
