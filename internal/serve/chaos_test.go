package serve

// Chaos suite for the verification service: the acceptance criteria of
// the hardened-service work, exercised end to end over real HTTP with
// -race. Overload sheds instead of collapsing, worker panics stay
// isolated, a degrading solver opens the breaker, and a drain (or a
// dropped client) mid-enumeration leaves a checkpoint that resumes to
// the identical vector set.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
)

// TestChaosOverloadShedsWithBoundedLatency drives 4x queue-capacity
// concurrent load into a deliberately slow 2-worker service and asserts
// the overload contract: every request gets a terminal answer (200 or a
// 429/503 shed with Retry-After — never a panic escape or a hang), at
// least one request is shed, and the latency of every admitted request
// stays bounded by its derived request deadline.
func TestChaosOverloadShedsWithBoundedLatency(t *testing.T) {
	faults := faultinject.New(1).DelaySolves(50 * time.Millisecond)
	budget := core.QueryBudget{Deadline: 2 * time.Second}
	var s *Server
	s, ts := newTestServer(t, func(o *Options) {
		o.QueueDepth = 4
		o.Workers = 2
		o.Faults = faults
		o.DefaultBudget = budget
		o.BreakerThreshold = 1.0 // sheds must come from the queue, not the breaker
	})
	deadline := s.requestDeadline(budget.Clamp(s.opts.MaxBudget), 1)

	const load = 4 * 4 // 4x queue capacity
	q := core.Query{Property: core.Observability, Combined: true, K: 0}

	type outcome struct {
		code    int
		latency time.Duration
		retry   string
	}
	results := make([]outcome, load)
	var wg sync.WaitGroup
	for i := 0; i < load; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			results[i] = outcome{code: resp.StatusCode, latency: time.Since(start),
				retry: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, r := range results {
		switch r.code {
		case http.StatusOK:
			ok++
			// Admitted-request latency is bounded by the request deadline
			// (queue wait included); slack covers HTTP overhead.
			if r.latency > deadline+time.Second {
				t.Errorf("request %d: admitted latency %v exceeds request deadline %v", i, r.latency, deadline)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed++
			if r.retry == "" {
				t.Errorf("request %d: shed %d without Retry-After", i, r.code)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, r.code)
		}
	}
	if ok == 0 {
		t.Error("overload shed everything; some requests should be admitted")
	}
	if shed == 0 {
		t.Error("4x queue-capacity load shed nothing")
	}
	if pan := s.reg.Counter("scadaver_worker_panics_total", nil); pan != 0 {
		t.Errorf("worker panics escaped under overload: %v", pan)
	}
	t.Logf("overload: %d admitted, %d shed (deadline bound %v)", ok, shed, deadline)
}

// TestChaosPanicIsolation arms the task-panic fault so every verify
// solve panics in the worker, and asserts the panic is converted to a
// 500 for that request only — the service stays live, ready, and able
// to answer probes.
func TestChaosPanicIsolation(t *testing.T) {
	faults := faultinject.New(1).PanicOnTask(0)
	s, ts := newTestServer(t, func(o *Options) {
		o.Faults = faults
		o.BreakerMinSamples = 100 // keep the breaker out of this test
	})

	q := core.Query{Property: core.Observability, Combined: true, K: 0}
	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
	body := decodeBody[errorBody](t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500", resp.StatusCode)
	}
	if body.Error == "" {
		t.Fatal("panicking request has no error envelope")
	}
	if got := s.reg.Counter("scadaver_worker_panics_total", nil); got != 1 {
		t.Fatalf("scadaver_worker_panics_total = %v, want 1", got)
	}

	// The blast radius ends at the request: probes still answer and the
	// service still reports ready.
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s after worker panic = %d", path, r.StatusCode)
		}
	}
}

// TestChaosBreakerOpensOnDegradedSolver stalls every solve so verify
// requests degrade to Unsolved, and asserts the rolling failure rate
// opens the breaker: /readyz flips unready and new work is shed with
// 503 until the cooldown.
func TestChaosBreakerOpensOnDegradedSolver(t *testing.T) {
	faults := faultinject.New(1).StallSolverAfter(1)
	clk := newFakeClock()
	s, ts := newTestServer(t, func(o *Options) {
		o.Faults = faults
		o.BreakerWindow = 8
		o.BreakerMinSamples = 4
		o.BreakerThreshold = 0.5
		o.BreakerCooldown = time.Minute
		o.breakerNow = clk.now
	})

	q := core.Query{Property: core.Observability, Combined: true, K: 2}
	var last int
	for i := 0; i < 8; i++ {
		resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		last = resp.StatusCode
		if last == http.StatusServiceUnavailable {
			break
		}
	}
	if last != http.StatusServiceUnavailable {
		t.Fatalf("breaker never opened under a stalled solver (last status %d)", last)
	}
	if !s.brk.Open() {
		t.Fatal("breaker reports closed after shedding")
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[readyzBody](t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !body.BreakerOpen {
		t.Fatalf("readyz with open breaker = %d %+v", resp.StatusCode, body)
	}
	if len(body.Reasons) != 1 || body.Reasons[0] != "breaker open" {
		t.Fatalf("open-breaker readyz reasons = %v, want [breaker open]", body.Reasons)
	}

	// After the cooldown the service advertises ready again so the next
	// request can run the half-open probe.
	clk.advance(time.Minute)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after cooldown = %d, want 200 (probe window)", resp.StatusCode)
	}
}

// enumerateVectors runs one /v1/enumerate request and returns the
// streamed vectors plus the trailer (nil if truncated).
func enumerateVectors(t testing.TB, url string, req EnumerateRequest) ([]core.ThreatVector, *EnumerateTrailer) {
	t.Helper()
	resp := postJSON(t, url+"/v1/enumerate", req)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("enumerate status = %d, body %s", resp.StatusCode, raw)
	}
	return readStream(t, resp)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestChaosDrainMidEnumerateResumes interrupts a slow enumeration with
// a forced drain, then boots a fresh service over the same checkpoint
// directory and asserts the retried request resumes from the journal
// and streams exactly the vector set an undisturbed enumeration finds.
func TestChaosDrainMidEnumerateResumes(t *testing.T) {
	dir := t.TempDir()
	q := core.Query{Property: core.Observability, Combined: true, K: 2}
	req := EnumerateRequest{Config: "grid", Query: q, Max: 32, RequestID: "drain-chaos-1"}

	// The reference vector set, from an undisturbed direct enumeration.
	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("test topology yields only %d vectors; too few to interrupt meaningfully", len(want))
	}

	// Service 1: slow solves, drained (forced, zero grace) mid-stream.
	faults := faultinject.New(1).DelaySolves(40 * time.Millisecond)
	s1, ts1 := newTestServer(t, func(o *Options) {
		o.CheckpointDir = dir
		o.Faults = faults
		o.Workers = 1
	})
	streamErr := make(chan error, 1)
	go func() {
		resp := postJSON(t, ts1.URL+"/v1/enumerate", req)
		defer resp.Body.Close()
		_, err := io.Copy(io.Discard, resp.Body)
		streamErr <- err
	}()

	// Wait until the journal proves at least one vector was discovered,
	// then force-drain with an already-expired context: in-flight solves
	// are interrupt-cancelled, the stream is truncated.
	ckptPath := filepath.Join(dir, req.RequestID+".ckpt")
	waitFor(t, 10*time.Second, func() bool {
		fi, err := os.Stat(ckptPath)
		return err == nil && fi.Size() > 0
	})
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := s1.Drain(expired); err == nil {
		t.Fatal("forced drain reported a clean finish")
	}
	<-streamErr // stream ended (truncated or complete); either way s1 is done
	ts1.Close()

	// Service 2: same checkpoint directory, no faults. The retry must
	// resume and finish with the identical vector set.
	_, ts2 := newTestServer(t, func(o *Options) { o.CheckpointDir = dir })
	vectors, trailer := enumerateVectors(t, ts2.URL, req)
	if trailer == nil || !trailer.Done {
		t.Fatalf("resumed enumeration did not finish (trailer %+v)", trailer)
	}
	got, wantKeys := vectorKeys(vectors), vectorKeys(want)
	if len(got) != len(wantKeys) {
		t.Fatalf("resumed enumeration streamed %d distinct vectors, want %d\ngot:  %v\nwant: %v",
			len(got), len(wantKeys), sortedKeys(got), sortedKeys(wantKeys))
	}
	for k := range wantKeys {
		if !got[k] {
			t.Fatalf("resumed enumeration is missing vector %s", k)
		}
	}
}

// TestChaosMidStreamDisconnectResumes models a client that vanishes
// mid-stream (injected stream fault) and asserts the checkpoint makes
// the retry complete with the full vector set, replaying what was
// already discovered.
func TestChaosMidStreamDisconnectResumes(t *testing.T) {
	dir := t.TempDir()
	q := core.Query{Property: core.Observability, Combined: true, K: 2}
	req := EnumerateRequest{Config: "grid", Query: q, Max: 32, RequestID: "drop-chaos-1"}

	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EnumerateThreats(q, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("test topology yields only %d vectors", len(want))
	}

	// Service 1: the stream drops after 2 items.
	faults := faultinject.New(1).DropStreamAfter(2)
	_, ts1 := newTestServer(t, func(o *Options) {
		o.CheckpointDir = dir
		o.Faults = faults
	})
	vectors, trailer := enumerateVectors(t, ts1.URL, req)
	if trailer != nil {
		t.Fatalf("dropped stream still delivered a trailer %+v", trailer)
	}
	if len(vectors) > 2 {
		t.Fatalf("stream delivered %d vectors after a drop-after-2 fault", len(vectors))
	}

	// Service 2: clean retry resumes from the checkpoint.
	_, ts2 := newTestServer(t, func(o *Options) { o.CheckpointDir = dir })
	vectors, trailer = enumerateVectors(t, ts2.URL, req)
	if trailer == nil || !trailer.Done {
		t.Fatalf("retry did not finish (trailer %+v)", trailer)
	}
	if trailer.Resumed == 0 {
		t.Fatal("retry found an empty checkpoint; the dropped stream journaled nothing")
	}
	got, wantKeys := vectorKeys(vectors), vectorKeys(want)
	if len(got) != len(wantKeys) {
		t.Fatalf("retry streamed %d distinct vectors, want %d", len(got), len(wantKeys))
	}
	for k := range wantKeys {
		if !got[k] {
			t.Fatalf("retry is missing vector %s", k)
		}
	}
}

// TestChaosCheckpointMismatchConflicts reuses a request ID for a
// different query and asserts the service answers 409 instead of
// silently resuming the wrong campaign.
func TestChaosCheckpointMismatchConflicts(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, func(o *Options) { o.CheckpointDir = dir })

	q1 := core.Query{Property: core.Observability, Combined: true, K: 2}
	req := EnumerateRequest{Config: "grid", Query: q1, Max: 8, RequestID: "reused-id"}
	if _, trailer := enumerateVectors(t, ts.URL, req); trailer == nil {
		t.Fatal("seed enumeration did not finish")
	}

	req.Query = core.Query{Property: core.SecuredObservability, Combined: true, K: 2}
	resp := postJSON(t, ts.URL+"/v1/enumerate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reused request ID with a different query = %d, want 409", resp.StatusCode)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// findStallableQuery probes the test config for a query that needs a
// few conflicts to decide, so an injected solver stall actually bites.
func findStallableQuery(t testing.TB, minConflicts uint64) core.Query {
	t.Helper()
	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Property{core.Observability, core.SecuredObservability} {
		for k := 1; k <= 3; k++ {
			q := core.Query{Property: p, Combined: true, K: k}
			res, err := a.Verify(q)
			if err != nil {
				continue
			}
			if res.Stats.Conflicts >= minConflicts {
				return q
			}
		}
	}
	t.Skip("test config has no conflict-requiring query to stall")
	return core.Query{}
}

// queriesSnapshot fetches GET /v1/queries.
func queriesSnapshot(t testing.TB, base string) QueriesResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/queries status = %d", resp.StatusCode)
	}
	var qr QueriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

// TestChaosStalledQueryWatch injects a solver stall plus per-solve
// delays and drives one verification through the service: while the
// query is in flight, /v1/queries shows a live row whose conflict count
// freezes (the stall signature); once the budget is exhausted, the
// completed row and the client-visible FailureReason both carry the
// stall diagnosis with the flight-record dump appended.
func TestChaosStalledQueryWatch(t *testing.T) {
	q := findStallableQuery(t, 3)
	faults := faultinject.New(5).StallSolverAfter(2).DelaySolves(400 * time.Millisecond)
	_, ts := newTestServer(t, func(o *Options) {
		o.Faults = faults
		o.DefaultBudget = core.QueryBudget{Deadline: 8 * time.Second, Retries: 1}
		o.AnalyzerOptions = []core.Option{core.WithProgressEvery(1)}
	})

	type reply struct {
		code int
		body VerifyResponse
	}
	replies := make(chan reply, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
		var vr VerifyResponse
		json.NewDecoder(resp.Body).Decode(&vr) //nolint:errcheck // asserted via code below
		resp.Body.Close()
		replies <- reply{code: resp.StatusCode, body: vr}
	}()

	// The live row must appear, then its conflict count must freeze:
	// two consecutive polls with conflicts > 0 and no movement, which
	// only happens while the stalled solver sits in an injected delay.
	var sawLive bool
	var prev uint64
	waitFor(t, 10*time.Second, func() bool {
		qr := queriesSnapshot(t, ts.URL)
		if len(qr.Active) == 0 {
			return false
		}
		row := qr.Active[0]
		sawLive = true
		if row.Phase != "solve" {
			return false
		}
		frozen := row.Conflicts > 0 && row.Conflicts == prev
		prev = row.Conflicts
		return frozen
	})
	if !sawLive {
		t.Fatal("stalled query never appeared in /v1/queries")
	}

	got := <-replies
	if got.code != http.StatusOK {
		t.Fatalf("verify status = %d", got.code)
	}
	res := got.body.Result
	if res == nil || res.Status.String() != "unsolved" {
		t.Fatalf("result = %+v, want unsolved", res)
	}
	if !strings.HasPrefix(res.FailureReason, core.ReasonInjectedStall) ||
		!strings.Contains(res.FailureReason, "[flight:") {
		t.Fatalf("FailureReason = %q, want stall diagnosis + flight dump", res.FailureReason)
	}

	qr := queriesSnapshot(t, ts.URL)
	if len(qr.Completed) != 1 {
		t.Fatalf("completed = %d rows, want 1", len(qr.Completed))
	}
	row := qr.Completed[0]
	if row.FailureReason != res.FailureReason {
		t.Fatalf("registry reason %q != result reason %q", row.FailureReason, res.FailureReason)
	}
	kinds := map[string]bool{}
	for _, ev := range row.Events {
		kinds[ev.Kind] = true
	}
	if !kinds["retry"] || !kinds["exhausted"] {
		t.Fatalf("flight events %v, want retry + exhausted", row.Events)
	}
}

// TestChaosOverloadQueryRegistryBounded drives 4x queue-capacity load
// at a tiny QueryHistory and asserts the introspection plane stays
// bounded: the completed ring never exceeds the configured history and
// no query is left dangling as active once the burst drains.
func TestChaosOverloadQueryRegistryBounded(t *testing.T) {
	faults := faultinject.New(1).DelaySolves(20 * time.Millisecond)
	s, ts := newTestServer(t, func(o *Options) {
		o.QueueDepth = 4
		o.Workers = 2
		o.Faults = faults
		o.QueryHistory = 4
		o.BreakerThreshold = 1.0
	})

	const load = 4 * 4
	q := core.Query{Property: core.Observability, Combined: true, K: 0}
	var wg sync.WaitGroup
	var served int64
	var mu sync.Mutex
	for i := 0; i < load; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: q})
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				mu.Lock()
				served++
				mu.Unlock()
			}
			qr := queriesSnapshot(t, ts.URL)
			if n := len(qr.Completed); n > 4 {
				t.Errorf("completed ring grew to %d under load, bound is 4", n)
			}
		}()
	}
	wg.Wait()
	if served == 0 {
		t.Fatal("overload burst served nothing")
	}
	waitFor(t, 5*time.Second, func() bool { return len(s.Queries().Active()) == 0 })
	if n := len(s.Queries().Completed()); n == 0 || n > 4 {
		t.Fatalf("completed ring = %d after burst, want 1..4", n)
	}
}

// certifyBoundary probes the grid config for the combined-observability
// budget boundary and returns a query whose pristine verdict is Unsat
// and one whose pristine verdict is Sat, with the ground-truth results
// from an unfaulted direct analyzer.
func certifyBoundary(t testing.TB) (unsatQ, satQ core.Query, unsatRes, satRes *core.Result) {
	t.Helper()
	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 8; k++ {
		q := core.Query{Property: core.Observability, Combined: true, K: k}
		res, err := a.Verify(q)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Status {
		case sat.Unsat:
			unsatQ, unsatRes = q, res
		case sat.Sat:
			if satRes == nil {
				satQ, satRes = q, res
			}
		}
		if unsatRes != nil && satRes != nil {
			return unsatQ, satQ, unsatRes, satRes
		}
	}
	t.Fatal("test config has no Unsat/Sat boundary within k <= 8")
	return
}

// TestChaosCertifyFlippedVerdictQuarantined arms the verdict-flip fault
// on a certifying service and drives one verification per flip
// direction through real HTTP. The certification audit must catch the
// corrupted verdict, quarantine the query, and hand the client the
// pristine re-solve's verdict with a certified attestation: a lying
// solver must never produce an uncaught wrong answer at the API
// boundary.
func TestChaosCertifyFlippedVerdictQuarantined(t *testing.T) {
	unsatQ, satQ, unsatRes, satRes := certifyBoundary(t)
	cases := []struct {
		name string
		q    core.Query
		want *core.Result
	}{
		{"unsat-flipped-to-sat", unsatQ, unsatRes},
		{"sat-flipped-to-unsat", satQ, satRes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := faultinject.New(1).FlipVerdict(0)
			reg := obs.NewRegistry()
			_, ts := newTestServer(t, func(o *Options) {
				o.Certify = true
				o.Metrics = reg
				o.Faults = faults
			})

			resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: tc.q})
			if resp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("verify status = %d, body %s", resp.StatusCode, raw)
			}
			vr := decodeBody[VerifyResponse](t, resp)
			if got := faults.Counts().VerdictFlips; got != 1 {
				t.Fatalf("verdict flips = %d, want exactly 1 — the corruption never fired", got)
			}
			res := vr.Result
			if res == nil {
				t.Fatal("certified verify returned no result")
			}
			if res.Status != tc.want.Status {
				t.Fatalf("served verdict %v, want the pristine verdict %v — the flip reached the client",
					res.Status, tc.want.Status)
			}
			if vr.Resilient != tc.want.Resilient() {
				t.Fatalf("served resilient=%v, ground truth %v", vr.Resilient, tc.want.Resilient())
			}
			if !res.Quarantined {
				t.Fatal("flipped verdict was not quarantined")
			}
			if !vr.Certified || !res.Certified {
				t.Fatalf("quarantined re-solve not certified (response %v, result %v): %s",
					vr.Certified, res.Certified, res.CertifyError)
			}
			if res.CertifyError == "" {
				t.Fatal("quarantined result carries no audit-failure cause")
			}
			pl := map[string]string{"property": tc.q.Property.String()}
			if got := reg.Counter("scadaver_certify_quarantine_total", pl); got != 1 {
				t.Fatalf("quarantine counter = %v, want 1", got)
			}
			if got := reg.Counter("scadaver_certify_divergence_total", pl); got != 1 {
				t.Fatalf("divergence counter = %v, want 1", got)
			}
		})
	}
}

// TestChaosCertifyCorruptedModelQuarantined arms the model-corruption
// fault (the solver reports the right status but a wrong witness) on a
// certifying service: the audit's witness re-check must catch it and
// the quarantined re-solve must return a vector that actually violates
// the property.
func TestChaosCertifyCorruptedModelQuarantined(t *testing.T) {
	_, satQ, _, satRes := certifyBoundary(t)
	faults := faultinject.New(1).CorruptModel(0)
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, func(o *Options) {
		o.Certify = true
		o.Metrics = reg
		o.Faults = faults
	})

	resp := postJSON(t, ts.URL+"/v1/verify", VerifyRequest{Config: "grid", Query: satQ})
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("verify status = %d, body %s", resp.StatusCode, raw)
	}
	vr := decodeBody[VerifyResponse](t, resp)
	if got := faults.Counts().ModelCorruptions; got != 1 {
		t.Fatalf("model corruptions = %d, want exactly 1", got)
	}
	res := vr.Result
	if res == nil || res.Status != satRes.Status {
		t.Fatalf("served result %+v, want status %v", res, satRes.Status)
	}
	if !res.Quarantined || !res.Certified {
		t.Fatalf("corrupted witness not quarantined+certified (quarantined=%v certified=%v): %s",
			res.Quarantined, res.Certified, res.CertifyError)
	}
	pl := map[string]string{"property": satQ.Property.String()}
	if got := reg.Counter("scadaver_certify_failed_total", pl); got == 0 {
		t.Fatal("audit-failure counter never moved for a corrupted witness")
	}
}

// TestChaosCertifySweepAttestation runs a clean certified sweep through
// HTTP and asserts the aggregate attestation: every budget's verdict
// matches an unfaulted direct sweep, the response is certified with a
// nonzero proof-clause count, and the audit counters account for every
// decided budget with zero quarantines.
func TestChaosCertifySweepAttestation(t *testing.T) {
	const maxK = 3
	a, err := core.NewAnalyzer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(core.Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sw.VerifyRange(maxK, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, ts := newTestServer(t, func(o *Options) {
		o.Certify = true
		o.Metrics = reg
	})
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Config: "grid", Property: core.Observability, MaxK: maxK})
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, raw)
	}
	sr := decodeBody[SweepResponse](t, resp)
	if len(sr.Results) != len(want) {
		t.Fatalf("sweep returned %d results, want %d", len(sr.Results), len(want))
	}
	for k, res := range sr.Results {
		if res.Status != want[k].Status {
			t.Fatalf("k=%d: certified sweep status %v, direct sweep %v", k, res.Status, want[k].Status)
		}
		if !res.Certified || res.Quarantined {
			t.Fatalf("k=%d: certified=%v quarantined=%v: %s", k, res.Certified, res.Quarantined, res.CertifyError)
		}
	}
	if !sr.Certified {
		t.Fatal("sweep aggregate attestation is uncertified")
	}
	if sr.ProofClauses == 0 {
		t.Fatal("certified sweep reports zero proof clauses")
	}
	pl := map[string]string{"property": core.Observability.String()}
	if got := reg.Counter("scadaver_certify_checked_total", pl); got != float64(len(want)) {
		t.Fatalf("checked counter = %v, want %d (one audit per budget)", got, len(want))
	}
	for _, name := range []string{"scadaver_certify_failed_total",
		"scadaver_certify_divergence_total", "scadaver_certify_quarantine_total"} {
		if got := reg.Counter(name, pl); got != 0 {
			t.Fatalf("%s = %v on a clean certified sweep, want 0", name, got)
		}
	}
}
