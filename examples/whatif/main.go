// What-if hardening: the workflow the paper motivates in Section I —
// "the framework allows a grid operator to understand the SCADA
// system's resiliency as well as to fix the system by analyzing the
// threat vectors."
//
// Starting from the case-study configuration, the example repeatedly
// verifies (1,1)-resilient secured observability, inspects the threat
// vectors, upgrades the weakest security profiles they expose, and
// re-verifies, until the specification holds or no further upgrade
// helps.
package main

import (
	"fmt"
	"log"

	"scadaver/internal/core"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		return err
	}
	q := core.Query{Property: core.SecuredObservability, K1: 1, K2: 1}
	policy := secpolicy.Default()

	for round := 1; ; round++ {
		analyzer, err := core.NewAnalyzer(cfg)
		if err != nil {
			return err
		}
		res, err := analyzer.Verify(q)
		if err != nil {
			return err
		}
		fmt.Printf("round %d: %v\n", round, res)
		if res.Resilient() {
			fmt.Println("specification holds — system hardened.")
			return nil
		}
		vectors, err := analyzer.EnumerateThreats(q, 10)
		if err != nil {
			return err
		}
		fmt.Printf("  %d threat vectors:\n", len(vectors))
		for _, v := range vectors {
			fmt.Printf("    %v\n", v)
		}

		// Remediation: find IEDs whose uplinks are not integrity
		// protected and upgrade the weakest one that co-occurs with the
		// threat vectors' RTUs.
		upgraded := false
		for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
			for _, l := range cfg.Net.Links() {
				if l.A != d.ID && l.B != d.ID {
					continue
				}
				caps := cfg.Net.HopCaps(l, policy)
				if caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects) {
					continue
				}
				fmt.Printf("  upgrading link %d-%d (%s) to chap-64 + sha2-256\n",
					l.A, l.B, secpolicy.FormatProfiles(l.Profiles))
				l.Profiles = []secpolicy.Profile{
					{Algo: secpolicy.CHAP, KeyBits: 64},
					{Algo: secpolicy.SHA2, KeyBits: 256},
				}
				upgraded = true
				break
			}
			if upgraded {
				break
			}
		}
		if !upgraded {
			fmt.Println("  no insecure IED uplink left to upgrade; remaining threats are topological.")
			fmt.Println("  (a redundant RTU uplink, not a crypto change, would be required)")
			return nil
		}
	}
}
