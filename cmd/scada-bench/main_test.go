package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scadaver/internal/experiments"
)

func TestRunCase(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "case"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Case study", "Fig. 3", "Fig. 4", "threat space"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRun7a(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "7a", "-inputs", "1", "-runs", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 7(a)") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "sweep", "-bus", "ieee14", "-maxk", "2", "-workers", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"k-sweep campaign: ieee14", "4 workers", "campaign wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "9z"}, &sb); err == nil {
		t.Fatal("unknown figure must error")
	}
}

// TestRunRecord drives -record end to end on the two smallest systems
// (with a 2-replica portfolio armed, exercising escalation plumbing)
// and checks the BENCH JSON artifact.
func TestRunRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	err := run([]string{"-record", path, "-inputs", "1", "-runs", "1", "-maxk", "1",
		"-systems", "ieee14,ieee30", "-portfolio", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "benchmark record") {
		t.Fatalf("output: %s", sb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var run2 experiments.BenchRun
	if err := json.Unmarshal(raw, &run2); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if run2.Schema != experiments.BenchSchema || len(run2.Figures) != 4 {
		t.Fatalf("record = %+v, want schema %s with 4 figures", run2, experiments.BenchSchema)
	}
	for _, f := range run2.Figures {
		if f.WallMs <= 0 || f.SolveMs <= 0 || f.Queries <= 0 {
			t.Fatalf("empty figure in record: %+v", f)
		}
	}
}

// TestRunSweepTraced checks -trace on the sweep campaign writes a
// non-empty JSONL file whose every line parses.
func TestRunSweepTraced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var sb strings.Builder
	err := run([]string{"-fig", "sweep", "-bus", "ieee14", "-maxk", "1", "-trace", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines", len(lines))
	}
	queries := 0
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if rec["ev"] == "begin" && rec["name"] == "query" {
			queries++
		}
	}
	if queries == 0 {
		t.Fatal("no query spans in sweep trace")
	}
}

// TestRunSweepCheckpoint drives -fig sweep with a checkpoint file and
// checks the campaign resumes from it without re-verifying.
func TestRunSweepCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	var sb strings.Builder
	args := []string{"-fig", "sweep", "-bus", "ieee14", "-maxk", "1",
		"-checkpoint", path, "-deadline", "1h", "-retries", "1"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], `"kind":"campaign"`) {
		t.Fatalf("checkpoint file:\n%s", raw)
	}

	sb.Reset()
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "k-sweep campaign: ieee14") {
		t.Fatalf("resumed output: %s", sb.String())
	}
}
