package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/scadanet"
	"scadaver/internal/serve"
)

// Member identifies one verification-service node.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Options configures a Coordinator. Every field except Members has a
// serviceable default noted per field; Members may also be empty when
// nodes join at runtime via POST /v1/cluster/join.
type Options struct {
	// Members seeds the ring. More join at runtime via
	// POST /v1/cluster/join.
	Members []Member
	// Configs mirrors the fleet's named configurations. It is only used
	// to compute campaign fingerprints for checkpoint-carrying handoff;
	// without it (nil) a failover restarts the campaign on the new owner
	// instead of resuming it — still correct, just more work.
	Configs map[string]*scadanet.Config

	// Replicas is the replica-walk depth used for failover ordering
	// (default 2). The ring still yields every member as a last resort;
	// Replicas shapes the preferred order.
	Replicas int
	// Attempts bounds how many members one request may be forwarded to
	// (default 3).
	Attempts int
	// AttemptTimeout is the per-attempt deadline for unary forwards —
	// verify (default 30s).
	AttemptTimeout time.Duration
	// StreamTimeout is the per-attempt deadline for long-running
	// forwards — enumerate streams and sweeps (default 5m).
	StreamTimeout time.Duration
	// RetryBackoff is the base delay before a retry attempt; attempt n
	// waits up to RetryBackoff·2ⁿ with full jitter, capped at
	// MaxRetryBackoff (defaults 50ms and 2s).
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration

	// HeartbeatInterval is the member health-probe cadence (default 1s);
	// ProbeTimeout bounds each probe (default: the interval, capped at
	// 2s).
	HeartbeatInterval time.Duration
	ProbeTimeout      time.Duration
	// Detector tunes the per-member failure detector; its Expected
	// defaults to HeartbeatInterval and its Now to the coordinator's
	// clock.
	Detector DetectorOptions

	// MaxJournal bounds the vectors journaled per in-flight enumeration
	// for handoff (default 4096). A journal past the bound stops
	// growing: the handoff then carries a prefix and the new owner
	// re-discovers the rest, which costs work but never correctness —
	// replayed vectors are deduplicated either way.
	MaxJournal int
	// Vnodes is the ring's virtual-node count per member (default 64).
	Vnodes int

	// Metrics receives the coordinator metrics (a fresh registry when
	// nil); served at /metrics and /metrics.json.
	Metrics *obs.Registry
	// Transport is the forwarding and probing transport (default
	// http.DefaultTransport). Chaos tests wrap it with
	// faultinject.Faults.Transport to refuse, delay or cut member
	// connections.
	Transport http.RoundTripper
	// ErrorLog receives failover and handoff notes (default: the
	// standard logger).
	ErrorLog *log.Logger

	// now overrides the clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 30 * time.Second
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 5 * time.Minute
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxRetryBackoff <= 0 {
		o.MaxRetryBackoff = 2 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.HeartbeatInterval
		if o.ProbeTimeout > 2*time.Second {
			o.ProbeTimeout = 2 * time.Second
		}
	}
	if o.MaxJournal <= 0 {
		o.MaxJournal = 4096
	}
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	if o.ErrorLog == nil {
		o.ErrorLog = log.Default()
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.Detector.Expected <= 0 {
		o.Detector.Expected = o.HeartbeatInterval
	}
	if o.Detector.Now == nil {
		o.Detector.Now = o.now
	}
	return o
}

// memberState is one member plus its failure detector and last probe
// outcome.
type memberState struct {
	Member
	det *Detector

	mu       sync.Mutex
	lastErr  string
	lastSeen time.Time
}

func (m *memberState) setProbe(err error, when time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.lastErr = err.Error()
		return
	}
	m.lastErr = ""
	m.lastSeen = when
}

func (m *memberState) probeInfo() (lastErr string, lastSeen time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr, m.lastSeen
}

// Coordinator fronts the member fleet: it owns the ring, the failure
// detectors and the forwarding (with failover and checkpoint-carrying
// handoff), and serves the cluster's aggregated health and membership
// API. Construct with New, mount Handler, call Close on shutdown.
type Coordinator struct {
	opts   Options
	reg    *obs.Registry
	client *http.Client
	ring   *Ring
	mux    *http.ServeMux

	mu      sync.RWMutex
	members map[string]*memberState

	seq  atomic.Int64
	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates the seed members, starts the heartbeat prober, and
// returns the coordinator ready to forward.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		reg:     opts.Metrics,
		client:  &http.Client{Transport: opts.Transport},
		ring:    NewRing(opts.Vnodes),
		mux:     http.NewServeMux(),
		members: map[string]*memberState{},
		stop:    make(chan struct{}),
	}
	for _, m := range opts.Members {
		if err := c.addMember(m); err != nil {
			return nil, fmt.Errorf("cluster: member %q: %w", m.Name, err)
		}
	}
	c.routes()
	c.updateMemberGauges()
	c.wg.Add(1)
	go c.heartbeatLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler: the forwarded /v1
// verification API, the cluster membership API, health and metrics.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the heartbeat prober. Forwards already in flight finish
// on their own deadlines.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
}

func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /v1/verify", c.handleVerify)
	c.mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	c.mux.HandleFunc("POST /v1/enumerate", c.handleEnumerate)
	c.mux.HandleFunc("PATCH /v1/configs/{name}", c.handlePatchConfig)
	c.mux.HandleFunc("GET /v1/subscribe", c.handleSubscribe)
	c.mux.HandleFunc("POST /v1/cluster/join", c.handleJoin)
	c.mux.HandleFunc("GET /v1/cluster/members", c.handleMembers)
	c.mux.HandleFunc("DELETE /v1/cluster/members/{name}", c.handleLeave)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
	})
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.Handle("GET /metrics", c.reg.Handler())
	c.mux.Handle("GET /metrics.json", c.reg.JSONHandler())
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client gone
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// addMember validates and places one member on the ring. A re-join
// under an existing name replaces the URL (a member restarted on a new
// port) and resets its detector.
func (c *Coordinator) addMember(m Member) error {
	if m.Name == "" {
		return fmt.Errorf("empty member name")
	}
	u, err := url.Parse(m.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("bad member URL %q (want http://host:port)", m.URL)
	}
	m.URL = u.Scheme + "://" + u.Host
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members[m.Name] = &memberState{Member: m, det: NewDetector(c.opts.Detector)}
	c.ring.Add(m.Name)
	return nil
}

func (c *Coordinator) removeMember(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[name]; !ok {
		return false
	}
	delete(c.members, name)
	c.ring.Remove(name)
	return true
}

func (c *Coordinator) memberSnapshot() []*memberState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*memberState, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// heartbeatLoop probes every member's /healthz on the configured
// cadence; a 200 is a heartbeat into that member's failure detector.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		members := c.memberSnapshot()
		var wg sync.WaitGroup
		for _, m := range members {
			wg.Add(1)
			go func(m *memberState) {
				defer wg.Done()
				c.probe(m)
			}(m)
		}
		wg.Wait()
		c.updateMemberGauges()
	}
}

func (c *Coordinator) probe(m *memberState) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/healthz", nil)
	if err != nil {
		m.setProbe(err, c.opts.now())
		return
	}
	resp, err := c.client.Do(req)
	result := "ok"
	if err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
	}
	if err != nil {
		result = "fail"
	} else {
		m.det.Heartbeat()
	}
	m.setProbe(err, c.opts.now())
	c.reg.Inc("scadaver_cluster_heartbeats_total",
		map[string]string{"member": m.Name, "result": result})
}

func (c *Coordinator) updateMemberGauges() {
	counts := map[State]int{}
	for _, m := range c.memberSnapshot() {
		counts[m.det.State()]++
	}
	for _, s := range []State{StateAlive, StateSuspect, StateDead} {
		c.reg.SetGauge("scadaver_cluster_members",
			map[string]string{"state": s.String()}, float64(counts[s]))
	}
}

// candidates returns the failover order for a key: the ring's replica
// walk, stably partitioned so alive members come first, then suspects,
// then dead ones as a last resort. The walk covers the whole
// membership — Replicas only shapes which members are "preferred"; a
// request never fails for want of candidates while any member is up.
func (c *Coordinator) candidates(key string) []*memberState {
	c.mu.RLock()
	names := c.ring.Owners(key, len(c.members))
	byName := make([]*memberState, 0, len(names))
	for _, n := range names {
		if m := c.members[n]; m != nil {
			byName = append(byName, m)
		}
	}
	c.mu.RUnlock()
	var alive, suspect, dead []*memberState
	for _, m := range byName {
		switch m.det.State() {
		case StateAlive:
			alive = append(alive, m)
		case StateSuspect:
			suspect = append(suspect, m)
		default:
			dead = append(dead, m)
		}
	}
	return append(append(alive, suspect...), dead...)
}

// backoff returns the full-jitter delay before retry attempt n (1-based
// over the retries, so the first retry waits up to RetryBackoff·2).
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opts.RetryBackoff << attempt
	if d > c.opts.MaxRetryBackoff || d <= 0 {
		d = c.opts.MaxRetryBackoff
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// sleepBackoff waits the backoff for attempt n, abandoning the wait if
// the client goes away.
func (c *Coordinator) sleepBackoff(ctx context.Context, attempt int) bool {
	t := time.NewTimer(c.backoff(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// retryableStatus reports whether a member response indicates the
// request may succeed elsewhere: shed, unready or proxy-level errors.
// 4xx contract errors (bad request, unknown config, checkpoint
// conflict) would fail identically on every member and are forwarded
// to the client as-is.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forwardOnce sends one attempt of a unary forward and accounts its
// latency under the member's label.
func (c *Coordinator) forwardOnce(ctx context.Context, m *memberState, method, path string, body []byte, timeout time.Duration) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	req, err := http.NewRequestWithContext(ctx, method, m.URL+path, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := c.client.Do(req)
	c.reg.ObserveDuration("scadaver_cluster_forward_seconds",
		map[string]string{"member": m.Name}, time.Since(start))
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel travels with the response body: the caller closes the
	// body, which releases the context.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// forward relays one unary request across the candidate walk: per
// attempt one member, one deadline; transport errors and retryable
// statuses fail over to the next candidate after a jittered backoff.
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, route, key string, body []byte, timeout time.Duration) {
	cands := c.candidates(key)
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}
	var lastErr error
	var shedCode int
	var shedRetryAfter string
	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if attempt > 0 {
			c.reg.Inc("scadaver_cluster_failovers_total", nil)
			if !c.sleepBackoff(r.Context(), attempt) {
				return // client gone
			}
		}
		m := cands[attempt%len(cands)]
		resp, err := c.forwardOnce(r.Context(), m, r.Method, r.URL.Path, body, timeout)
		if err != nil {
			lastErr = fmt.Errorf("member %s: %w", m.Name, err)
			c.opts.ErrorLog.Printf("cluster: %s attempt %d on %s failed: %v", route, attempt+1, m.Name, err)
			continue
		}
		if retryableStatus(resp.StatusCode) && attempt+1 < c.opts.Attempts {
			lastErr = fmt.Errorf("member %s: status %d", m.Name, resp.StatusCode)
			shedCode, shedRetryAfter = resp.StatusCode, resp.Header.Get("Retry-After")
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			continue
		}
		relayResponse(w, resp)
		c.accountForward(route, m.Name, resp.StatusCode)
		return
	}
	// Exhausted. If any member answered at all it answered with a shed
	// (429/503) — relay that verdict and its Retry-After instead of a
	// proxy error: "the cluster is overloaded, retry later" is
	// actionable in a way 502 is not, and the dead member a final
	// attempt happened to land on should not mask it.
	if shedCode != 0 {
		if shedRetryAfter != "" {
			w.Header().Set("Retry-After", shedRetryAfter)
		}
		writeError(w, shedCode, "all %d attempts failed, last: %v", c.opts.Attempts, lastErr)
		c.accountForward(route, "", shedCode)
		return
	}
	writeError(w, http.StatusBadGateway, "all %d attempts failed, last: %v", c.opts.Attempts, lastErr)
	c.accountForward(route, "", http.StatusBadGateway)
}

func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone
}

func (c *Coordinator) accountForward(route, member string, code int) {
	c.reg.Inc("scadaver_cluster_requests_total",
		map[string]string{"route": route, "code": strconv.Itoa(code)})
	_ = member
}

// routingKey gives campaign affinity: the same config and query shape
// routes to the same member, so its encoding cache and checkpoints are
// warm for retries.
func routingKey(parts ...any) string {
	raw, _ := json.Marshal(parts) //nolint:errcheck // plain structs
	return string(raw)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return nil, false
	}
	return body, true
}

func (c *Coordinator) handleVerify(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.VerifyRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	c.forward(w, r, "verify", routingKey("verify", req.Config, req.Query), body, c.opts.AttemptTimeout)
}

// configKey routes everything about one named configuration — mutation
// and subscription alike — to the same ring owner, so the member whose
// delta-aware encoding cache evolved under a PATCH is also the member
// whose re-verification verdicts the watchers stream.
func configKey(name string) string { return routingKey("config", name) }

// handlePatchConfig relays a configuration mutation to the config's
// ring owner. A mutation is not idempotent — a delta applied twice is a
// different (or invalid) delta — so unlike the verify walk there is no
// failover: one attempt on the owner, and a transport error is the
// client's to retry against the still-live prior version.
func (c *Coordinator) handlePatchConfig(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	cands := c.candidates(configKey(r.PathValue("name")))
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}
	m := cands[0]
	resp, err := c.forwardOnce(r.Context(), m, http.MethodPatch, r.URL.Path, body, c.opts.AttemptTimeout)
	if err != nil {
		c.opts.ErrorLog.Printf("cluster: patch on %s failed: %v", m.Name, err)
		writeError(w, http.StatusBadGateway, "member %s: %v", m.Name, err)
		c.accountForward("patch", m.Name, http.StatusBadGateway)
		return
	}
	relayResponse(w, resp)
	c.accountForward("patch", m.Name, resp.StatusCode)
}

// handleSubscribe relays a mutation-event stream from the config's ring
// owner — the same member PATCHes route to — copying JSONL lines
// through with a flush per line. The stream lives until the client
// disconnects, the owner drains, or StreamTimeout bounds it; a client
// that loses the stream reconnects and gets a fresh greeting.
func (c *Coordinator) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("config")
	cands := c.candidates(configKey(name))
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}
	m := cands[0]
	resp, err := c.forwardOnce(r.Context(), m, http.MethodGet,
		"/v1/subscribe?config="+url.QueryEscape(name), nil, c.opts.StreamTimeout)
	if err != nil {
		c.opts.ErrorLog.Printf("cluster: subscribe on %s failed: %v", m.Name, err)
		writeError(w, http.StatusBadGateway, "member %s: %v", m.Name, err)
		c.accountForward("subscribe", m.Name, http.StatusBadGateway)
		return
	}
	if resp.StatusCode != http.StatusOK {
		relayResponse(w, resp)
		c.accountForward("subscribe", m.Name, resp.StatusCode)
		return
	}
	defer resp.Body.Close()
	flusher, _ := w.(http.Flusher)
	c.startStream(w)
	if flusher != nil {
		flusher.Flush()
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if _, err := w.Write(append(bytes.Clone(line), '\n')); err != nil {
			break // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	c.accountForward("subscribe", m.Name, http.StatusOK)
}

// assignRequestID gives a coordinator-owned ID to a campaign the client
// did not name, so failover can re-issue it — and a member checkpoint
// can carry it — under a stable identity.
func (c *Coordinator) assignRequestID(prefix string) string {
	return fmt.Sprintf("%s-%d-%d", prefix, c.opts.now().UnixNano(), c.seq.Add(1))
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.RequestID == "" {
		req.RequestID = c.assignRequestID("coord-sweep")
		var err error
		if body, err = json.Marshal(req); err != nil {
			writeError(w, http.StatusInternalServerError, "re-encode: %v", err)
			return
		}
	}
	key := routingKey("sweep", req.Config, req.Property, req.R, req.KL, req.MaxK)
	cands := c.candidates(key)
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}
	var lastErr error
	var prev *memberState
	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if attempt > 0 {
			c.reg.Inc("scadaver_cluster_failovers_total", nil)
			if !c.sleepBackoff(r.Context(), attempt) {
				return
			}
		}
		m := cands[attempt%len(cands)]
		if prev != nil && prev != m {
			// Checkpoint-carrying handoff, member-to-member: the failed
			// owner's journal holds every budget it finished. If the old
			// owner still answers (a partition from the client, a crash
			// after the journal hit disk and a restart), carry the journal
			// so the new owner re-solves only the missing budgets.
			c.carrySweepCheckpoint(r.Context(), prev, m, req.RequestID)
		}
		resp, err := c.forwardOnce(r.Context(), m, http.MethodPost, "/v1/sweep", body, c.opts.StreamTimeout)
		if err != nil {
			lastErr = fmt.Errorf("member %s: %w", m.Name, err)
			c.opts.ErrorLog.Printf("cluster: sweep attempt %d on %s failed: %v", attempt+1, m.Name, err)
			prev = m
			continue
		}
		if retryableStatus(resp.StatusCode) && attempt+1 < c.opts.Attempts {
			lastErr = fmt.Errorf("member %s: status %d", m.Name, resp.StatusCode)
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			prev = m
			continue
		}
		relayResponse(w, resp)
		c.accountForward("sweep", m.Name, resp.StatusCode)
		return
	}
	writeError(w, http.StatusBadGateway, "all %d attempts failed, last: %v", c.opts.Attempts, lastErr)
	c.accountForward("sweep", "", http.StatusBadGateway)
}

// carrySweepCheckpoint moves a sweep journal from the failed owner to
// the next one, best effort: GET the old owner's checkpoint, PUT it to
// the new owner. Either side failing degrades to a restart — the
// campaign is re-solved, never corrupted.
func (c *Coordinator) carrySweepCheckpoint(ctx context.Context, from, to *memberState, id string) {
	outcome := "restarted"
	defer func() {
		c.reg.Inc("scadaver_cluster_handoffs_total", map[string]string{"outcome": outcome})
	}()
	getCtx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(getCtx, http.MethodGet, from.URL+"/v1/checkpoints/"+id, nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	journal, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	if c.putCheckpoint(ctx, to, id, core.CheckpointKindCampaign, journal) {
		outcome = "carried"
	} else {
		outcome = "failed"
	}
}

// putCheckpoint lands a serialized journal on a member.
func (c *Coordinator) putCheckpoint(ctx context.Context, to *memberState, id, kind string, journal []byte) bool {
	putCtx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(putCtx, http.MethodPut,
		to.URL+"/v1/checkpoints/"+id+"?kind="+kind, bytes.NewReader(journal))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.client.Do(req)
	if err != nil {
		c.opts.ErrorLog.Printf("cluster: handoff PUT to %s failed: %v", to.Name, err)
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.opts.ErrorLog.Printf("cluster: handoff PUT to %s status %d", to.Name, resp.StatusCode)
		return false
	}
	return true
}

// enumerateFingerprint computes the campaign fingerprint a member will
// bind this enumeration's checkpoint to, or "" when the coordinator
// does not hold the config.
func (c *Coordinator) enumerateFingerprint(req serve.EnumerateRequest) string {
	cfg := c.opts.Configs[req.Config]
	if cfg == nil {
		return ""
	}
	fp, err := core.CampaignFingerprint(cfg, core.CheckpointKindEnumerate, req.Query, core.EncodingVersion)
	if err != nil {
		return ""
	}
	return fp
}

// handleEnumerate relays an enumeration stream with node-kill survival.
// The coordinator journals every vector it forwards (bounded,
// deduplicated by ThreatVector identity). When the serving member dies
// mid-stream, the journal is serialized as a fingerprint-bound
// checkpoint, PUT to the next owner, and the request re-issued there
// under the same requestId; the new owner replays the journal and
// continues the search, and the coordinator suppresses the replayed
// prefix — the client sees each vector exactly once and a single
// trailer, regardless of how many members died along the way.
func (c *Coordinator) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req serve.EnumerateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.RequestID == "" {
		req.RequestID = c.assignRequestID("coord-enum")
		var err error
		if body, err = json.Marshal(req); err != nil {
			writeError(w, http.StatusInternalServerError, "re-encode: %v", err)
			return
		}
	}
	key := routingKey("enumerate", req.Config, req.Query)
	cands := c.candidates(key)
	if len(cands) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}

	flusher, _ := w.(http.Flusher)
	seen := map[string]bool{}     // vector identity → already forwarded
	var journal []json.RawMessage // forwarded vectors, discovery order
	journalFull := false          // MaxJournal reached; handoff carries a prefix
	streamed := false             // response status is committed
	replayed := 0                 // vectors suppressed as handoff replays
	var lastErr error
	var prev *memberState

	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if attempt > 0 {
			c.reg.Inc("scadaver_cluster_failovers_total", nil)
			if !c.sleepBackoff(r.Context(), attempt) {
				return
			}
		}
		m := cands[attempt%len(cands)]
		if prev != nil && prev != m && len(journal) > 0 {
			c.carryEnumerateJournal(r.Context(), m, req, journal, journalFull)
		}
		prev = m

		resp, err := c.forwardOnce(r.Context(), m, http.MethodPost, "/v1/enumerate", body, c.opts.StreamTimeout)
		if err != nil {
			lastErr = fmt.Errorf("member %s: %w", m.Name, err)
			c.opts.ErrorLog.Printf("cluster: enumerate attempt %d on %s failed: %v", attempt+1, m.Name, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			if retryableStatus(resp.StatusCode) && attempt+1 < c.opts.Attempts {
				lastErr = fmt.Errorf("member %s: status %d", m.Name, resp.StatusCode)
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				continue
			}
			if !streamed {
				relayResponse(w, resp)
				c.accountForward("enumerate", m.Name, resp.StatusCode)
				return
			}
			// The stream is already committed as 200; a terminal member
			// error now can only truncate it (no trailer), matching the
			// single-node contract for a broken stream.
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			lastErr = fmt.Errorf("member %s: status %d after stream start", m.Name, resp.StatusCode)
			continue
		}

		done, err := c.relayVectorStream(w, flusher, resp.Body, seen, &journal, &journalFull, &streamed, &replayed)
		resp.Body.Close()
		if done {
			c.accountForward("enumerate", m.Name, http.StatusOK)
			return
		}
		lastErr = fmt.Errorf("member %s: stream broke: %v", m.Name, err)
		c.opts.ErrorLog.Printf("cluster: enumerate stream from %s broke after %d vectors: %v",
			m.Name, len(seen), err)
	}

	if !streamed {
		writeError(w, http.StatusBadGateway, "all %d attempts failed, last: %v", c.opts.Attempts, lastErr)
	}
	// A committed stream ends without a trailer: the truncation tells
	// the client the enumeration did not finish, same as a single node
	// dying on it.
	c.accountForward("enumerate", "", http.StatusBadGateway)
}

// relayVectorStream copies one member's JSONL enumeration stream to the
// client, deduplicating vectors against seen and journaling fresh ones.
// It returns done=true when the member's trailer arrived — the
// coordinator then writes its own trailer accounting the full relayed
// set — and done=false when the stream broke first.
func (c *Coordinator) relayVectorStream(w http.ResponseWriter, flusher http.Flusher, body io.Reader,
	seen map[string]bool, journal *[]json.RawMessage, journalFull *bool, streamed *bool, replayed *int) (bool, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return false, fmt.Errorf("bad stream line: %w", err)
		}
		if probe.Done != nil {
			// Member trailer. The coordinator owns the client-facing
			// trailer: Vectors counts the distinct vectors actually
			// relayed, Resumed the replays suppressed across handoffs.
			if !*streamed {
				c.startStream(w)
				*streamed = true
			}
			trailer, _ := json.Marshal(serve.EnumerateTrailer{ //nolint:errcheck // plain struct
				Done: true, Vectors: len(seen), Resumed: *replayed})
			w.Write(append(trailer, '\n')) //nolint:errcheck // client gone
			if flusher != nil {
				flusher.Flush()
			}
			return true, nil
		}
		var v core.ThreatVector
		if err := json.Unmarshal(line, &v); err != nil {
			return false, fmt.Errorf("bad vector line: %w", err)
		}
		if seen[v.Key()] {
			*replayed++
			continue
		}
		seen[v.Key()] = true
		if len(*journal) < c.opts.MaxJournal {
			*journal = append(*journal, json.RawMessage(bytes.Clone(line)))
		} else if !*journalFull {
			*journalFull = true
			c.opts.ErrorLog.Printf("cluster: enumerate journal full at %d vectors; a handoff now carries a prefix", c.opts.MaxJournal)
		}
		if !*streamed {
			c.startStream(w)
			*streamed = true
		}
		w.Write(append(bytes.Clone(line), '\n')) //nolint:errcheck // client gone
		if flusher != nil {
			flusher.Flush()
		}
	}
	err := sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF // stream ended with no trailer
	}
	return false, err
}

func (c *Coordinator) startStream(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
}

// carryEnumerateJournal serializes the coordinator's vector journal as
// a fingerprint-bound checkpoint and lands it on the next owner, so the
// re-issued request resumes instead of restarting. Best effort: without
// the config (no fingerprint) or with the PUT failing, the new owner
// restarts the search and the coordinator's dedup still guarantees the
// client a clean stream.
func (c *Coordinator) carryEnumerateJournal(ctx context.Context, to *memberState,
	req serve.EnumerateRequest, journal []json.RawMessage, journalFull bool) {
	outcome := "restarted"
	defer func() {
		c.reg.Inc("scadaver_cluster_handoffs_total", map[string]string{"outcome": outcome})
	}()
	fp := c.enumerateFingerprint(req)
	if fp == "" {
		return
	}
	ck := core.NewTransferCheckpoint(core.CheckpointKindEnumerate, fp, journal)
	var buf bytes.Buffer
	if _, err := ck.WriteTo(&buf); err != nil {
		return
	}
	if c.putCheckpoint(ctx, to, req.RequestID, core.CheckpointKindEnumerate, buf.Bytes()) {
		outcome = "carried"
		if journalFull {
			outcome = "carried-prefix"
		}
	} else {
		outcome = "failed"
	}
}

// memberInfo is one member's entry in the membership and readiness
// bodies.
type memberInfo struct {
	Name     string  `json:"name"`
	URL      string  `json:"url"`
	State    string  `json:"state"`
	Phi      float64 `json:"phi"`
	LastErr  string  `json:"lastError,omitempty"`
	LastSeen string  `json:"lastSeen,omitempty"`
}

func (c *Coordinator) memberInfos() []memberInfo {
	members := c.memberSnapshot()
	out := make([]memberInfo, 0, len(members))
	for _, m := range members {
		lastErr, lastSeen := m.probeInfo()
		info := memberInfo{
			Name:    m.Name,
			URL:     m.URL,
			State:   m.det.State().String(),
			Phi:     math.Round(m.det.Phi()*100) / 100,
			LastErr: lastErr,
		}
		if !lastSeen.IsZero() {
			info.LastSeen = lastSeen.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, info)
	}
	return out
}

// clusterReadyz is the aggregated readiness body: ready while at least
// one member is alive, with Reasons naming each dependency that is not.
type clusterReadyz struct {
	Ready   bool         `json:"ready"`
	Reasons []string     `json:"reasons,omitempty"`
	Members []memberInfo `json:"members"`
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	infos := c.memberInfos()
	body := clusterReadyz{Members: infos}
	alive := 0
	for _, m := range infos {
		switch m.State {
		case StateAlive.String():
			alive++
		case StateSuspect.String():
			body.Reasons = append(body.Reasons, fmt.Sprintf("member %s suspect", m.Name))
		default:
			body.Reasons = append(body.Reasons, fmt.Sprintf("member %s down", m.Name))
		}
	}
	if len(infos) == 0 {
		body.Reasons = append(body.Reasons, "no members joined")
	}
	body.Ready = alive > 0
	code := http.StatusOK
	if !body.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (c *Coordinator) handleMembers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"members": c.memberInfos()})
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var m Member
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&m); err != nil {
		writeError(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	if err := c.addMember(m); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.updateMemberGauges()
	c.opts.ErrorLog.Printf("cluster: member %s joined at %s", m.Name, m.URL)
	writeJSON(w, http.StatusOK, map[string]any{"members": c.memberInfos()})
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !c.removeMember(name) {
		writeError(w, http.StatusNotFound, "no member %q", name)
		return
	}
	c.updateMemberGauges()
	c.opts.ErrorLog.Printf("cluster: member %s removed", name)
	writeJSON(w, http.StatusOK, map[string]any{"members": c.memberInfos()})
}
