package sat

import (
	"math/rand"
	"testing"
)

// addLearned registers a clause as a learned clause the way record()
// would, so vivification tests can craft exact inputs.
func addLearned(s *Solver, lits ...Lit) *clause {
	c := &clause{lits: append([]Lit(nil), lits...), learned: true, lbd: int32(len(lits))}
	s.learned = append(s.learned, c)
	s.attach(c)
	return c
}

// TestVivifyShortensImpliedSuffix: with ¬a ⊢ b ⊢ c by unit propagation,
// the learned clause (a ∨ c ∨ d) vivifies to (a ∨ c): assuming ¬a
// propagates c, so the remaining literals are redundant.
func TestVivifyShortensImpliedSuffix(t *testing.T) {
	s := New()
	vs := newVars(s, 4)
	a, b, c, d := vs[0], vs[1], vs[2], vs[3]
	mustAdd(t, s, PosLit(a), PosLit(b)) // ¬a → b
	mustAdd(t, s, NegLit(b), PosLit(c)) // b → c
	cl := addLearned(s, PosLit(a), PosLit(c), PosLit(d))

	s.vivifyClause(cl)
	if cl.deleted {
		t.Fatalf("clause deleted, want shortened")
	}
	if len(cl.lits) != 2 {
		t.Fatalf("vivified length = %d (%v), want 2", len(cl.lits), cl.lits)
	}
	if st := s.Stats(); st.VivifiedClauses != 1 {
		t.Fatalf("VivifiedClauses = %d, want 1", st.VivifiedClauses)
	}
	_ = d
	if s.Solve() != Sat {
		t.Fatalf("instance must stay satisfiable after vivification")
	}
}

// TestVivifyDropsRootSatisfied: a learned clause containing a root-true
// literal is removed outright.
func TestVivifyDropsRootSatisfied(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	mustAdd(t, s, PosLit(vs[0])) // root unit: v0 = true
	if s.propagate() != nil {
		t.Fatal("unexpected root conflict")
	}
	cl := addLearned(s, PosLit(vs[0]), PosLit(vs[1]), PosLit(vs[2]))
	s.vivifyClause(cl)
	if !cl.deleted {
		t.Fatalf("root-satisfied learned clause not removed")
	}
}

// TestVivifyEquisatisfiable: running inprocessing aggressively via the
// restart hook must never change a verdict, on unsat (pigeonhole) and
// on seeded random instances alike.
func TestVivifyEquisatisfiable(t *testing.T) {
	arm := func(s *Solver) {
		s.restartHook = func() {
			s.simplifyRoots()
			if !s.rootUnsat {
				s.vivifyRound(64)
			}
		}
		s.restartBase = 16 // restart (and hence inprocess) often
	}

	s := New()
	php(t, s, 7, 6)
	arm(s)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(7,6) with inprocessing = %v, want unsat", got)
	}
	if s.Stats().VivifiedClauses == 0 {
		t.Fatalf("inprocessing never strengthened a clause on a hard instance")
	}

	for seed := int64(0); seed < 20; seed++ {
		plain := New()
		_, clauses := randomSeededCNF(t, plain, rand.New(rand.NewSource(900+seed)), 20, 70, 3)
		want := plain.Solve()

		proc := New()
		randomSeededCNF(t, proc, rand.New(rand.NewSource(900+seed)), 20, 70, 3)
		arm(proc)
		got := proc.Solve()
		if got != want {
			t.Fatalf("seed %d: inprocessed=%v plain=%v", seed, got, want)
		}
		if got == Sat && !modelSatisfies(proc, clauses) {
			t.Fatalf("seed %d: inprocessed model violates original clauses", seed)
		}
	}
}

// TestSimplifyRootsRemovesSatisfied: clauses satisfied by root units
// disappear from both databases.
func TestSimplifyRootsRemovesSatisfied(t *testing.T) {
	s := New()
	vs := newVars(s, 4)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1])) // satisfied once v0 is forced
	mustAdd(t, s, PosLit(vs[2]), PosLit(vs[3])) // untouched
	mustAdd(t, s, PosLit(vs[0]))                // root unit added last, so the clause above is already in the DB
	if s.propagate() != nil {
		t.Fatal("unexpected root conflict")
	}
	addLearned(s, PosLit(vs[0]), NegLit(vs[2]))
	before := len(s.clauses)
	s.simplifyRoots()
	if len(s.clauses) >= before {
		t.Fatalf("satisfied problem clause not removed: %d -> %d", before, len(s.clauses))
	}
	if len(s.learned) != 0 {
		t.Fatalf("satisfied learned clause not removed")
	}
	if s.Solve() != Sat {
		t.Fatalf("instance must stay satisfiable after root cleaning")
	}
}
