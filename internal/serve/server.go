// Package serve is the long-running verification service around the
// SCADA Analyzer: an HTTP/JSON API over named configurations with the
// robustness layers a service needs that a one-shot CLI does not —
// bounded admission (shed with 429, never unbounded goroutines),
// server-capped per-request budgets mapped onto core.QueryBudget, a
// fixed worker pool with per-request panic isolation, checkpoint-backed
// resumable enumeration streams, a breaker that turns /readyz unready
// when the rolling unsolved/panic rate says the service is degrading,
// and a graceful drain that finishes or deadline-cancels in-flight
// solves on shutdown. Overload degrades; it does not cascade.
//
// The request path is: admission (drain gate → breaker → bounded
// queue) → worker pool (core.Runner / core.Sweep / enumeration under
// *core.PanicError recovery) → response. See DESIGN.md §10.
package serve

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/scadanet"
)

// Options configures a Server. Configs is required; every other field
// has a serviceable default noted per field.
type Options struct {
	// Configs are the named SCADA configurations the service verifies;
	// requests select one by name. Each is validated at construction so
	// a bad config fails the boot, not the first request.
	Configs map[string]*scadanet.Config

	// QueueDepth bounds the admission queue (default 64). Requests
	// beyond depth are shed with 429 Retry-After.
	QueueDepth int
	// Workers is the fixed worker-pool size (default GOMAXPROCS).
	Workers int
	// Portfolio arms portfolio escalation in every worker's analyzer:
	// a query exceeding the escalation threshold is raced across this
	// many diversified solver replicas (see core.WithPortfolio). Since
	// each escalated query may run Portfolio goroutines at once, the
	// worker pool is shrunk to Workers/Portfolio (min 1) so replicas do
	// not oversubscribe the admission pipeline. <= 1 disables.
	Portfolio int

	// DefaultBudget applies when a request carries no budget; it is
	// clamped by MaxBudget like any request budget (default: 10s
	// deadline, no retries).
	DefaultBudget core.QueryBudget
	// MaxBudget is the server-enforced budget ceiling: request budgets
	// are clamped to it, so a client can tighten but never loosen the
	// server's bounds (default: 30s deadline, 2 retries).
	MaxBudget core.QueryBudget
	// RequestTimeout bounds a whole request — queue wait included —
	// when its budget derives no deadline (default 60s).
	RequestTimeout time.Duration

	// MaxEnumerate caps the vectors one /v1/enumerate request may
	// stream (default 256).
	MaxEnumerate int
	// MaxSweepK caps the budget range of one /v1/sweep request
	// (default 64).
	MaxSweepK int
	// RetryAfter is the Retry-After hint attached to shed responses
	// (default 1s). The header value is this duration rounded up to
	// whole seconds plus up to 50% random jitter (also rounded up), so a
	// cohort of simultaneously-shed clients does not re-stampede the
	// queue on the very same second: with RetryAfter = 4s the header is
	// uniformly one of 4..6.
	RetryAfter time.Duration

	// MaxSubscribers caps concurrent GET /v1/subscribe streams per
	// configuration (default 64); a subscriber beyond the cap is shed
	// with 503 Retry-After.
	MaxSubscribers int
	// CacheEntries bounds the service-wide encoding cache (default 256
	// entries, LRU): the cache keeps at most this many distinct
	// (structure, options) snapshots, evicting the least recently used
	// and counting evictions in
	// scadaver_encoding_cache_evictions_total.
	CacheEntries int

	// QueryHistory bounds how many completed queries GET /v1/queries
	// retains (default obs.DefaultQueryHistory). Active queries are
	// bounded by the worker pool, so the introspection plane's memory
	// is fixed regardless of load.
	QueryHistory int
	// SLOThreshold arms latency SLO accounting: requests slower than
	// this increment scadaver_slo_breach_total{route}, and queries over
	// it are written to the slow-query log with their flight record
	// (and traced, when tracing is on). 0 disables both.
	SLOThreshold time.Duration

	// Breaker tuning; zero values select the defaults documented on
	// breakerOptions.
	BreakerWindow     int
	BreakerThreshold  float64
	BreakerMinSamples int
	BreakerCooldown   time.Duration

	// CheckpointDir enables resumable /v1/enumerate requests: a request
	// with a requestId journals its vectors to <dir>/<requestId>.ckpt
	// and a retry of the same requestId resumes instead of re-solving.
	// Empty disables checkpointing.
	CheckpointDir string

	// Metrics receives the service metrics (a fresh registry when nil);
	// it is also served at /metrics and /metrics.json.
	Metrics *obs.Registry
	// Faults threads a deterministic fault-injection plan through the
	// solvers, the checkpoint writer and the HTTP stream (chaos tests
	// only; nil injects nothing).
	Faults *faultinject.Faults
	// AnalyzerOptions are extra options for every analyzer the service
	// builds (policy, path bounds, tracing).
	AnalyzerOptions []core.Option
	// Presimplify preprocesses each structural CNF before search (unit
	// propagation, probing, subsumption, bounded variable elimination —
	// see core.WithPresimplify). With the shared encoding cache the cost
	// is paid once per distinct structure, not per request.
	Presimplify bool
	// NoEncodingCache disables the service-wide encoding cache. By
	// default every worker clones ready solver snapshots from one shared
	// core.EncodingCache, so concurrent identical requests encode (and
	// preprocess) each structure exactly once — singleflight — instead
	// of per request.
	NoEncodingCache bool
	// Certify makes every verdict this service reports carry a
	// certification attestation (core.WithCertification): solves are
	// proof-logged and checked in-process, sat models are audited, and
	// diverging verdicts are quarantined and re-solved pristinely. The
	// attestation surfaces in the certified/proofClauses/auditMs fields
	// of /v1/verify and /v1/sweep responses.
	Certify bool
	// ErrorLog receives worker panics and drain progress (default:
	// the standard logger).
	ErrorLog *log.Logger

	// breakerNow overrides the breaker clock in tests.
	breakerNow func() time.Time
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Portfolio > 1 {
		// Replica accounting: an escalated query fans out into Portfolio
		// solver goroutines, so divide the pool to keep total solver
		// concurrency at the configured level.
		if w := o.Workers / o.Portfolio; w >= 1 {
			o.Workers = w
		} else {
			o.Workers = 1
		}
	}
	if !o.DefaultBudget.Enabled() {
		o.DefaultBudget = core.QueryBudget{Deadline: 10 * time.Second}
	}
	if !o.MaxBudget.Enabled() {
		o.MaxBudget = core.QueryBudget{Deadline: 30 * time.Second, Retries: 2}
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxEnumerate <= 0 {
		o.MaxEnumerate = 256
	}
	if o.MaxSweepK <= 0 {
		o.MaxSweepK = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxSubscribers <= 0 {
		o.MaxSubscribers = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.ErrorLog == nil {
		o.ErrorLog = log.Default()
	}
	return o
}

// Server is the verification service. Construct with New, mount
// Handler on an http.Server, and call Drain exactly once on shutdown.
type Server struct {
	opts  Options
	reg   *obs.Registry
	q     *queue
	brk   *breaker
	mux   *http.ServeMux
	cache *core.EncodingCache // nil when NoEncodingCache

	// configs is the versioned configuration registry: one slot per
	// served name, each holding the atomically-published current version
	// and the mutation-event hub. The map itself is immutable after New;
	// PATCH swaps versions inside a slot.
	configs map[string]*servedConfig

	// queries is the live query registry behind GET /v1/queries and the
	// per-query flight recorders; every worker analyzer reports into it.
	queries *obs.QueryRegistry

	// baseCtx is the service lifetime; cancelBase deadline-cancels every
	// in-flight solve through the solver interrupt hook (forced drain).
	baseCtx    context.Context
	cancelBase context.CancelFunc

	quit      chan struct{} // stops idle workers once all jobs finished
	workersWG sync.WaitGroup

	// admitMu serializes admission against Drain: once draining is set
	// under the mutex, no new job can slip past the jobsWG.Wait.
	admitMu  sync.Mutex
	draining atomic.Bool
	jobsWG   sync.WaitGroup

	inflight atomic.Int64
	seq      atomic.Int64
}

// New validates the options and every named configuration, starts the
// worker pool, and returns the service ready to accept requests.
func New(opts Options) (*Server, error) {
	// Validate the caller's budgets before withDefaults, which replaces
	// a disabled budget — and a negative deadline reads as disabled — so
	// a nonsensical configuration fails loudly instead of silently
	// becoming the default.
	if err := opts.DefaultBudget.Validate(); err != nil {
		return nil, fmt.Errorf("serve: default budget: %w", err)
	}
	if err := opts.MaxBudget.Validate(); err != nil {
		return nil, fmt.Errorf("serve: max budget: %w", err)
	}
	opts = opts.withDefaults()
	if len(opts.Configs) == 0 {
		return nil, fmt.Errorf("serve: no configurations to serve")
	}
	for name, cfg := range opts.Configs {
		if _, err := core.NewAnalyzer(cfg, opts.AnalyzerOptions...); err != nil {
			return nil, fmt.Errorf("serve: config %q: %w", name, err)
		}
	}

	s := &Server{
		opts: opts,
		reg:  opts.Metrics,
		q:    newQueue(opts.QueueDepth, opts.Metrics),
		quit: make(chan struct{}),
	}
	if !opts.NoEncodingCache {
		// Delta-aware and bounded: mutations evolve snapshots in place
		// (DESIGN.md §16) instead of cold re-encoding, and the LRU cap
		// keeps a mutation-heavy service's memory fixed.
		s.cache = core.NewEncodingCache(
			core.CacheWithDelta(),
			core.CacheWithLimit(opts.CacheEntries),
			core.CacheWithMetrics(opts.Metrics),
		)
	}
	s.configs = make(map[string]*servedConfig, len(opts.Configs))
	for name, cfg := range opts.Configs {
		sc := &servedConfig{name: name, hub: newMutationHub(name, opts.MaxSubscribers, opts.Metrics)}
		sc.cur.Store(&configVersion{cfg: cfg, version: 1})
		s.configs[name] = sc
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.brk = newBreaker(breakerOptions{
		Window:     opts.BreakerWindow,
		Threshold:  opts.BreakerThreshold,
		MinSamples: opts.BreakerMinSamples,
		Cooldown:   opts.BreakerCooldown,
		now:        opts.breakerNow,
	}, func(open bool) {
		v := 0.0
		if open {
			v = 1.0
		}
		s.reg.SetGauge("scadaver_breaker_open", nil, v)
	})
	s.reg.SetGauge("scadaver_breaker_open", nil, 0)
	s.reg.SetGauge("scadaver_queue_depth", nil, 0)
	s.reg.SetGauge("scadaver_inflight", nil, 0)
	obs.RecordBuildInfo(s.reg)

	s.queries = obs.NewQueryRegistry(opts.QueryHistory, 0)
	if t := opts.SLOThreshold; t > 0 {
		s.reg.SetGauge("scadaver_slo_threshold_seconds", nil, t.Seconds())
		s.queries.SetSlowQueryLog(t, func(snap obs.QuerySnapshot) {
			s.opts.ErrorLog.Printf(
				"serve: slow query id=%d property=%s budget=%s status=%s dur=%s attempts=%d conflicts=%d flight=[%s]",
				snap.ID, snap.Property, snap.Budget, snap.Status,
				time.Duration(snap.ElapsedNanos), snap.Attempt, snap.Conflicts,
				flightLine(snap.Events, snap.EventsDropped))
		})
	}

	s.mux = http.NewServeMux()
	s.routes()

	s.workersWG.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler: the /v1 verification
// API, health and readiness probes, metrics, and pprof.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/enumerate", s.handleEnumerate)
	s.mux.HandleFunc("PATCH /v1/configs/{name}", s.handlePatchConfig)
	// Subscribe bypasses admission like the introspection routes: a
	// watcher must be able to observe re-verification verdicts exactly
	// when the service is busy. It is bounded by MaxSubscribers instead.
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	// Introspection routes bypass admission: an operator must be able
	// to see what the service is doing precisely when it is overloaded.
	s.mux.HandleFunc("GET /v1/queries", s.handleQueries)
	s.mux.HandleFunc("GET /v1/queries/{id}/watch", s.handleQueryWatch)
	// Checkpoint transfer also bypasses admission: it is cheap journal
	// I/O, and a cluster handoff must be able to land a checkpoint on a
	// node precisely while the fleet is degraded.
	s.mux.HandleFunc("GET /v1/checkpoints/{id}", s.handleCheckpointExport)
	s.mux.HandleFunc("PUT /v1/checkpoints/{id}", s.handleCheckpointImport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.Handle("GET /metrics.json", s.reg.JSONHandler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Ready reports whether the service should receive traffic: not
// draining and the breaker not open.
func (s *Server) Ready() bool {
	return !s.draining.Load() && !s.brk.Open()
}

// Inflight reports how many requests are executing right now.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// QueueDepth reports the current admission-queue occupancy.
func (s *Server) QueueDepth() int { return s.q.depth() }

// Queries exposes the live query registry (never nil after New).
func (s *Server) Queries() *obs.QueryRegistry { return s.queries }

// analyzerOptions assembles the per-request analyzer options: the
// service-wide extras, metrics, the fault plan, and the derived budget.
func (s *Server) analyzerOptions(b core.QueryBudget) []core.Option {
	opts := append([]core.Option(nil), s.opts.AnalyzerOptions...)
	opts = append(opts, core.WithMetrics(s.reg), core.WithBudget(b),
		core.WithQueryRegistry(s.queries))
	if s.cache != nil {
		opts = append(opts, core.WithEncodingCache(s.cache))
	}
	if s.opts.Presimplify {
		opts = append(opts, core.WithPresimplify(true))
	}
	if s.opts.Certify {
		opts = append(opts, core.WithCertification(true))
	}
	if s.opts.Portfolio > 1 {
		opts = append(opts, core.WithPortfolio(s.opts.Portfolio))
	}
	if s.opts.Faults != nil {
		opts = append(opts, core.WithFaults(s.opts.Faults))
	}
	return opts
}

// deriveBudget maps a request's budget spec onto the server's bounds:
// an absent budget takes the default, and every budget — client or
// default — is clamped by the server ceiling.
func (s *Server) deriveBudget(b core.QueryBudget) (core.QueryBudget, error) {
	if err := b.Validate(); err != nil {
		return core.QueryBudget{}, err
	}
	if !b.Enabled() {
		b = s.opts.DefaultBudget
	}
	return b.Clamp(s.opts.MaxBudget), nil
}

// requestDeadline derives the whole-request deadline (queue wait
// included) from the effective budget: the sum of the escalating
// per-attempt deadlines plus a grace for non-solve work, falling back
// to RequestTimeout for unbounded budgets. perSolve > 1 scales the
// bound for multi-solve requests (sweeps, enumerations).
func (s *Server) requestDeadline(b core.QueryBudget, perSolve int) time.Duration {
	if b.Deadline <= 0 {
		return s.opts.RequestTimeout
	}
	esc := b.Escalate
	if esc <= 1 {
		esc = core.DefaultEscalation
	}
	total := time.Duration(0)
	d := b.Deadline
	for i := 0; i <= b.Retries; i++ {
		total += d
		d = time.Duration(float64(d) * esc)
	}
	if perSolve > 1 {
		total *= time.Duration(perSolve)
	}
	// Grace for queueing, encoding and the interrupt-poll latency of an
	// expiring solve.
	total += total/4 + 100*time.Millisecond
	if total > s.opts.RequestTimeout {
		total = s.opts.RequestTimeout
	}
	return total
}

// admit runs the admission pipeline for one request: drain gate, then
// breaker, then the bounded queue. On success the returned job is
// enqueued and its done channel will be closed by a worker; on shed the
// response (503 or 429 with Retry-After) has already been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, route string, deadline time.Duration, run func(ctx context.Context) error) (*job, context.CancelFunc, bool) {
	if s.draining.Load() {
		s.shed(w, route, http.StatusServiceUnavailable, "draining")
		return nil, nil, false
	}
	if !s.brk.Allow() {
		s.shed(w, route, http.StatusServiceUnavailable, "breaker")
		return nil, nil, false
	}

	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	stop := context.AfterFunc(s.baseCtx, cancel)
	release := func() { stop(); cancel() }

	j := &job{
		id:       s.seq.Add(1),
		route:    route,
		ctx:      ctx,
		run:      run,
		done:     make(chan struct{}),
		enqueued: time.Now(),
	}

	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		release()
		s.brk.Cancel()
		s.shed(w, route, http.StatusServiceUnavailable, "draining")
		return nil, nil, false
	}
	s.jobsWG.Add(1)
	s.admitMu.Unlock()

	if !s.q.tryEnqueue(j) {
		s.jobsWG.Done()
		release()
		s.brk.Cancel()
		s.shed(w, route, http.StatusTooManyRequests, "queue")
		return nil, nil, false
	}
	return j, release, true
}

// retryAfterSeconds derives one shed response's Retry-After value: the
// configured hint rounded up to seconds, plus up to 50% jitter. Without
// the jitter, every client shed by the same burst would retry on the
// same second and re-create the burst it was shed from.
func (s *Server) retryAfterSeconds() int {
	base := int((s.opts.RetryAfter + time.Second - 1) / time.Second)
	jitter := (base + 1) / 2
	return base + rand.IntN(jitter+1)
}

// shed rejects a request at admission with a jittered Retry-After hint
// and accounts for it; shed requests never reach the worker pool and
// never feed the breaker window.
func (s *Server) shed(w http.ResponseWriter, route string, code int, reason string) {
	s.reg.Inc("scadaver_shed_total", map[string]string{"reason": reason})
	s.reg.Inc("scadaver_http_requests_total", map[string]string{
		"route": route, "code": strconv.Itoa(code),
	})
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeJSONError(w, code, "overloaded: "+reason)
}

// worker is one pool goroutine: it executes admitted jobs until Drain
// closes quit (which only happens after every admitted job finished).
func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		j := s.q.dequeue(s.quit)
		if j == nil {
			return
		}
		s.execute(j)
	}
}

// execute runs one job with panic isolation and closes its done
// channel. A job whose context died while queued (client disconnect,
// deadline, drain) is skipped, not solved.
func (s *Server) execute(j *job) {
	defer s.jobsWG.Done()
	defer close(j.done)
	s.reg.ObserveDuration("scadaver_queue_wait_seconds",
		map[string]string{"route": j.route}, time.Since(j.enqueued))
	if err := j.ctx.Err(); err != nil {
		j.err = err
		return
	}
	s.reg.SetGauge("scadaver_inflight", nil, float64(s.inflight.Add(1)))
	defer func() {
		s.reg.SetGauge("scadaver_inflight", nil, float64(s.inflight.Add(-1)))
	}()
	j.err = s.isolated(j)
}

// isolated reuses the campaign panic-isolation contract: a panic in
// verification code becomes a *core.PanicError naming the request, the
// request gets a 500, and the service keeps serving.
func (s *Server) isolated(j *job) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &core.PanicError{Index: int(j.id), Value: v, Stack: debug.Stack()}
			s.reg.Inc("scadaver_worker_panics_total", nil)
			s.opts.ErrorLog.Printf("serve: request %d (%s) panicked: %v", j.id, j.route, v)
		}
	}()
	return j.run(j.ctx)
}

// Drain gracefully shuts the service down: stop admitting (readyz
// unready, new requests shed with 503), let in-flight and queued jobs
// finish, and — if ctx expires first — deadline-cancel the remaining
// solves through the solver interrupt hook and wait for them to
// unwind. Safe to call once; returns ctx's error when the drain had to
// force-cancel. The HTTP listener itself is the caller's to close
// (http.Server.Shutdown), ideally after Drain marked the service
// unready.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	already := s.draining.Swap(true)
	s.admitMu.Unlock()
	if already {
		return nil
	}

	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.opts.ErrorLog.Printf("serve: drain deadline reached; cancelling in-flight solves")
		s.cancelBase()
		<-done
	}
	s.cancelBase()
	close(s.quit)
	s.workersWG.Wait()
	return err
}
