// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): scalability of the resiliency verification
// with problem size (Fig. 5a/5b), the impact of the hierarchy level on
// execution time (Fig. 6a/6b), maximum resiliency versus measurement
// density (Fig. 7a), and the threat-space size versus hierarchy
// (Fig. 7b), plus the Section IV case-study scenarios and a parallel
// k-sweep campaign used to measure the worker-pool speedup. It is
// shared by cmd/scada-bench and the repository's testing.B benchmarks.
//
// The figure campaigns fan their (point, input) grid out over a
// core.Runner worker pool: every grid cell generates its own synthetic
// configuration and analyzer (the solver ownership rule), writes only
// its own result slot, and the per-point averages are folded serially
// in index order afterwards, so the reported numbers are independent of
// scheduling. Verdicts and counts are bit-identical to a serial run;
// wall-clock timings of individual solves are measured per solve and
// stay meaningful under contention, though noisier.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// Options tunes experiment effort. The paper uses at least 3 random
// inputs per point and at least 5 runs per input.
type Options struct {
	Inputs int // random inputs per point (default 3)
	Runs   int // timed runs per input (default 5)

	// Workers sizes the worker pool the campaigns fan out on; <= 0
	// selects runtime.GOMAXPROCS(0). Use 1 to reproduce the paper's
	// serial methodology with minimal timing noise.
	Workers int

	// Systems restricts Fig5 to a subset of the bus systems (default:
	// ieee14, ieee30, ieee57, ieee118).
	Systems []string
	// MaxHierarchy bounds the Fig6/Fig7b sweep (default 4).
	MaxHierarchy int
	// Percents restricts the Fig7a density sweep (default 50..100 by 10).
	Percents []float64
	// MaxK bounds the BenchRecord k-sweep campaigns (default 4).
	MaxK int
	// BoundaryOnly lists systems BenchRecord records with the boundary
	// campaign only, skipping the k-sweep — large instances whose
	// boundary became feasible with the portfolio but whose full sweep
	// has not. Defaults to ieee118 when Systems is also defaulted.
	BoundaryOnly []string

	// Trace, when set, is the parent span under which every campaign
	// verification records its query/phase spans (see internal/obs).
	Trace *obs.Span
	// Metrics, when set, aggregates counters and phase histograms from
	// every analyzer the campaign fans out, across all workers.
	Metrics *obs.Registry
	// Queries, when set, mirrors every campaign verification into the
	// live query registry (core.WithQueryRegistry) — the scada-bench
	// -watch mode renders progress lines from it.
	Queries *obs.QueryRegistry
	// Budget bounds every individual verification (per-attempt deadline,
	// conflict cap, retries with escalation); the zero value imposes no
	// bounds. Exhausted queries degrade to Unsolved results instead of
	// failing the campaign.
	Budget core.QueryBudget

	// Presimplify preprocesses each structural CNF before search
	// (core.WithPresimplify); combined with the encoding cache the cost
	// is paid once per structure.
	Presimplify bool
	// NoCache disables the per-campaign encoding cache; every
	// verification then re-encodes its structure from scratch (the
	// pre-optimization behaviour, kept for A/B measurements).
	NoCache bool
	// Portfolio arms portfolio escalation in every campaign analyzer:
	// queries exceeding the escalation threshold race this many
	// diversified solver replicas (core.WithPortfolio). <= 1 = serial.
	Portfolio int
	// PortfolioNoShare disables the learnt-clause exchange between
	// replicas — the ablation leg of the §P3 methodology.
	PortfolioNoShare bool
	// Certify arms verdict certification in every campaign analyzer
	// (core.WithCertification): proof-logged solves checked in-process,
	// audited sat models, quarantine on divergence. The §R3 overhead
	// ablation toggles this knob.
	Certify bool
	// Cache is the campaign's shared encoding cache; withDefaults
	// creates one unless NoCache is set, and all workers clone from it.
	Cache *core.EncodingCache
}

// CoreOptions translates the observability and robustness knobs into
// analyzer options to thread into every analyzer a campaign creates.
func (o Options) CoreOptions() []core.Option {
	var opts []core.Option
	if o.Trace != nil {
		opts = append(opts, core.WithTrace(o.Trace))
	}
	if o.Metrics != nil {
		opts = append(opts, core.WithMetrics(o.Metrics))
	}
	if o.Queries != nil {
		opts = append(opts, core.WithQueryRegistry(o.Queries))
	}
	if o.Budget.Enabled() {
		opts = append(opts, core.WithBudget(o.Budget))
	}
	if o.Cache != nil {
		opts = append(opts, core.WithEncodingCache(o.Cache))
	}
	if o.Presimplify {
		opts = append(opts, core.WithPresimplify(true))
	}
	if o.Certify {
		opts = append(opts, core.WithCertification(true))
	}
	if o.Portfolio > 1 {
		opts = append(opts, core.WithPortfolio(o.Portfolio))
		if o.PortfolioNoShare {
			opts = append(opts, core.WithPortfolioNoShare(true))
		}
	}
	return opts
}

func (o Options) withDefaults() Options {
	if o.Inputs <= 0 {
		o.Inputs = 3
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if len(o.Systems) == 0 {
		o.Systems = []string{"ieee14", "ieee30", "ieee57", "ieee118"}
	}
	if o.MaxHierarchy <= 0 {
		o.MaxHierarchy = 4
	}
	if len(o.Percents) == 0 {
		o.Percents = []float64{50, 60, 70, 80, 90, 100}
	}
	if o.MaxK <= 0 {
		o.MaxK = 4
	}
	if o.Cache == nil && !o.NoCache {
		o.Cache = core.NewEncodingCache()
	}
	return o
}

// runGrid evaluates cell(point, input) for every pair on the options'
// worker pool. Cells are independent: each must write only its own
// pre-allocated slot. Aggregation belongs after runGrid returns, in
// index order, so campaign outputs do not depend on scheduling.
func runGrid(opt Options, points int, cell func(p, i int) error) error {
	r := core.NewRunner(opt.Workers)
	return r.Run(context.Background(), points*opt.Inputs, func(idx int) error {
		return cell(idx/opt.Inputs, idx%opt.Inputs)
	})
}

// ScalePoint is one x-position of a timing figure: average execution
// time and solver effort of the verification for satisfiable and
// unsatisfiable specifications at the resiliency boundary.
type ScalePoint struct {
	Label          string  // e.g. "ieee30" or "h=2"
	Buses          int     // problem size
	Devices        int     // IEDs + RTUs (averaged over inputs)
	BoundaryK      float64 // average maximum-resiliency k
	SatMillis      float64 // avg time of the sat query (k*+1)
	UnsatMillis    float64 // avg time of the unsat query (k*)
	SatConflicts   float64 // avg solver conflicts of the sat query
	UnsatConflicts float64 // avg solver conflicts of the unsat query
}

// timedVerify runs the query `runs` times and returns the average
// duration plus the (stable) status and per-solve solver statistics.
// The search is deterministic for a fixed encoding, so the stats of the
// last run stand for all of them.
func timedVerify(a *core.Analyzer, q core.Query, runs int) (time.Duration, sat.Status, sat.Stats, error) {
	var total time.Duration
	var status sat.Status
	var stats sat.Stats
	for i := 0; i < runs; i++ {
		res, err := a.Verify(q)
		if err != nil {
			return 0, sat.Unsolved, sat.Stats{}, err
		}
		total += res.Duration
		status = res.Status
		stats = res.Stats
	}
	return total / time.Duration(runs), status, stats, nil
}

// boundary is one instance's timed resiliency boundary: the unsat query
// at k* and the sat query at k*+1, with their per-solve solver stats.
type boundary struct {
	k                  int
	satMs, unsatMs     float64
	satConf, unsatConf uint64
}

// boundaryTimes finds the instance's resiliency boundary k* for the
// property (combined budget) and times the unsat query at k* and the sat
// query at k*+1 — the paper's sat/unsat series at a meaningful spec.
func boundaryTimes(cfg *scadanet.Config, prop core.Property, runs int, opts ...core.Option) (boundary, error) {
	a, err := core.NewAnalyzer(cfg, opts...)
	if err != nil {
		return boundary{}, err
	}
	kStar, err := a.MaxResiliencyCombined(prop, cfg.R)
	if err != nil {
		return boundary{}, err
	}
	unsatK := kStar
	if unsatK < 0 {
		// Even zero failures violate the property (e.g. weak security
		// profiles under secured observability); there is no unsat
		// query — time the k=0 sat query on both series.
		unsatK = 0
	}
	du, _, su, err := timedVerify(a, core.Query{Property: prop, Combined: true, K: unsatK, R: cfg.R}, runs)
	if err != nil {
		return boundary{}, err
	}
	ds, _, ss, err := timedVerify(a, core.Query{Property: prop, Combined: true, K: kStar + 1, R: cfg.R}, runs)
	if err != nil {
		return boundary{}, err
	}
	return boundary{k: kStar, satMs: ms(ds), unsatMs: ms(du), satConf: ss.Conflicts, unsatConf: su.Conflicts}, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func deviceCount(cfg *scadanet.Config) int {
	return len(cfg.Net.DevicesOfKind(scadanet.IED)) + len(cfg.Net.DevicesOfKind(scadanet.RTU))
}

// Fig5 measures verification time versus problem size over the IEEE
// 14/30/57/118-bus systems — Fig. 5(a) with Observability, Fig. 5(b)
// with SecuredObservability.
func Fig5(prop core.Property, opt Options) ([]ScalePoint, error) {
	opt = opt.withDefaults()
	systems := make([]*powergrid.BusSystem, len(opt.Systems))
	for i, name := range opt.Systems {
		sys, err := powergrid.ByName(name)
		if err != nil {
			return nil, err
		}
		systems[i] = sys
	}

	type cell struct {
		devices int
		b       boundary
	}
	cells := make([]cell, len(systems)*opt.Inputs)
	err := runGrid(opt, len(systems), func(p, i int) error {
		sys := systems[p]
		cfg, err := synth.Generate(synth.Params{
			Bus:       sys,
			Seed:      int64(1000*sys.NBuses + i),
			Hierarchy: 2,
			// Fully secured uplinks keep the observability and
			// secured-observability boundaries aligned, so Fig. 5(a)
			// vs 5(b) isolates the model-size effect of the security
			// constraints, as in the paper.
			SecureFraction: 1,
		})
		if err != nil {
			return err
		}
		b, err := boundaryTimes(cfg, prop, opt.Runs, opt.CoreOptions()...)
		if err != nil {
			return err
		}
		cells[p*opt.Inputs+i] = cell{devices: deviceCount(cfg), b: b}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []ScalePoint
	for p, sys := range systems {
		pt := ScalePoint{Label: opt.Systems[p], Buses: sys.NBuses}
		for i := 0; i < opt.Inputs; i++ {
			c := cells[p*opt.Inputs+i]
			pt.Devices += c.devices
			pt.BoundaryK += float64(c.b.k)
			pt.SatMillis += c.b.satMs
			pt.UnsatMillis += c.b.unsatMs
			pt.SatConflicts += float64(c.b.satConf)
			pt.UnsatConflicts += float64(c.b.unsatConf)
		}
		n := float64(opt.Inputs)
		pt.Devices /= opt.Inputs
		pt.BoundaryK /= n
		pt.SatMillis /= n
		pt.UnsatMillis /= n
		pt.SatConflicts /= n
		pt.UnsatConflicts /= n
		out = append(out, pt)
	}
	return out, nil
}

// Fig6 measures verification time versus hierarchy level on one bus
// system — Fig. 6(a) uses ieee14, Fig. 6(b) ieee57. Following the
// paper's methodology, each random input is verified against fixed
// specifications (k = 1 and k = 2) and the measured times are bucketed
// by the query's outcome into the satisfiable and unsatisfiable series.
func Fig6(busName string, prop core.Property, opt Options) ([]ScalePoint, error) {
	opt = opt.withDefaults()
	sys, err := powergrid.ByName(busName)
	if err != nil {
		return nil, err
	}
	budgets := []int{0, 1, 2, 4}

	type probe struct {
		status    sat.Status
		millis    float64
		conflicts uint64
	}
	type cell struct {
		devices int
		probes  [4]probe
	}
	cells := make([]cell, opt.MaxHierarchy*opt.Inputs)
	err = runGrid(opt, opt.MaxHierarchy, func(p, i int) error {
		h := p + 1
		cfg, err := synth.Generate(synth.Params{
			Bus:            sys,
			Seed:           int64(100*h + i),
			Hierarchy:      h,
			SecureFraction: 0.9,
		})
		if err != nil {
			return err
		}
		a, err := core.NewAnalyzer(cfg, opt.CoreOptions()...)
		if err != nil {
			return err
		}
		c := cell{devices: deviceCount(cfg)}
		for j, k := range budgets {
			d, status, st, err := timedVerify(a, core.Query{Property: prop, Combined: true, K: k}, opt.Runs)
			if err != nil {
				return err
			}
			c.probes[j] = probe{status: status, millis: ms(d), conflicts: st.Conflicts}
		}
		cells[p*opt.Inputs+i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []ScalePoint
	for p := 0; p < opt.MaxHierarchy; p++ {
		pt := ScalePoint{Label: fmt.Sprintf("h=%d", p+1), Buses: sys.NBuses}
		satN, unsatN := 0, 0
		var kSum float64
		for i := 0; i < opt.Inputs; i++ {
			c := cells[p*opt.Inputs+i]
			pt.Devices += c.devices
			for j, pr := range c.probes {
				kSum += float64(budgets[j])
				switch pr.status {
				case sat.Sat:
					pt.SatMillis += pr.millis
					pt.SatConflicts += float64(pr.conflicts)
					satN++
				case sat.Unsat:
					pt.UnsatMillis += pr.millis
					pt.UnsatConflicts += float64(pr.conflicts)
					unsatN++
				}
			}
		}
		pt.Devices /= opt.Inputs
		pt.BoundaryK = kSum / float64(len(budgets)*opt.Inputs)
		if satN > 0 {
			pt.SatMillis /= float64(satN)
			pt.SatConflicts /= float64(satN)
		}
		if unsatN > 0 {
			pt.UnsatMillis /= float64(unsatN)
			pt.UnsatConflicts /= float64(unsatN)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ResiliencyPoint is one x-position of Fig. 7(a): maximum tolerable
// IED-only and RTU-only failures at a measurement density.
type ResiliencyPoint struct {
	Percent float64
	MaxIED  float64
	MaxRTU  float64
}

// Fig7a measures maximum resiliency versus measurement density on the
// 14-bus system.
func Fig7a(opt Options) ([]ResiliencyPoint, error) {
	opt = opt.withDefaults()
	sys := powergrid.IEEE14()

	type cell struct{ mi, mr int }
	cells := make([]cell, len(opt.Percents)*opt.Inputs)
	err := runGrid(opt, len(opt.Percents), func(p, i int) error {
		pct := opt.Percents[p]
		cfg, err := synth.Generate(synth.Params{
			Bus:                sys,
			Seed:               int64(10*pct) + int64(i),
			Hierarchy:          1,
			MeasurementPercent: pct,
			SecureFraction:     1,
		})
		if err != nil {
			return err
		}
		a, err := core.NewAnalyzer(cfg, opt.CoreOptions()...)
		if err != nil {
			return err
		}
		mi, err := a.MaxResiliency(core.Observability, 0, true, false)
		if err != nil {
			return err
		}
		mr, err := a.MaxResiliency(core.Observability, 0, false, true)
		if err != nil {
			return err
		}
		cells[p*opt.Inputs+i] = cell{mi: mi, mr: mr}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []ResiliencyPoint
	for p, pct := range opt.Percents {
		pt := ResiliencyPoint{Percent: pct}
		for i := 0; i < opt.Inputs; i++ {
			c := cells[p*opt.Inputs+i]
			pt.MaxIED += float64(c.mi)
			pt.MaxRTU += float64(c.mr)
		}
		pt.MaxIED /= float64(opt.Inputs)
		pt.MaxRTU /= float64(opt.Inputs)
		out = append(out, pt)
	}
	return out, nil
}

// ThreatSpacePoint is one x-position of Fig. 7(b): the number of
// distinct minimal threat vectors per hierarchy level, for several
// resiliency specifications.
type ThreatSpacePoint struct {
	Hierarchy int
	// Vectors maps a spec label like "(1,1)" to the averaged count.
	Vectors map[string]float64
}

// ThreatEnumerationCap bounds threat-space counting.
const ThreatEnumerationCap = 500

// Fig7b measures the threat-space size versus hierarchy on the 14-bus
// system for the specs (1,1), (2,1) and (2,2).
func Fig7b(opt Options) ([]ThreatSpacePoint, error) {
	opt = opt.withDefaults()
	sys := powergrid.IEEE14()
	specs := []struct {
		label  string
		k1, k2 int
	}{
		{"(1,1)", 1, 1},
		{"(2,1)", 2, 1},
		{"(2,2)", 2, 2},
	}

	cells := make([][3]int, opt.MaxHierarchy*opt.Inputs)
	err := runGrid(opt, opt.MaxHierarchy, func(p, i int) error {
		h := p + 1
		cfg, err := synth.Generate(synth.Params{
			Bus:            sys,
			Seed:           int64(7000 + 10*h + i),
			Hierarchy:      h,
			SecureFraction: 1,
		})
		if err != nil {
			return err
		}
		a, err := core.NewAnalyzer(cfg, opt.CoreOptions()...)
		if err != nil {
			return err
		}
		for j, s := range specs {
			n, err := a.CountThreats(core.Query{Property: core.Observability, K1: s.k1, K2: s.k2}, ThreatEnumerationCap)
			if err != nil {
				return err
			}
			cells[p*opt.Inputs+i][j] = n
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []ThreatSpacePoint
	for p := 0; p < opt.MaxHierarchy; p++ {
		pt := ThreatSpacePoint{Hierarchy: p + 1, Vectors: map[string]float64{}}
		for i := 0; i < opt.Inputs; i++ {
			for j, s := range specs {
				pt.Vectors[s.label] += float64(cells[p*opt.Inputs+i][j])
			}
		}
		for k := range pt.Vectors {
			pt.Vectors[k] /= float64(opt.Inputs)
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepResult is the outcome of the parallel k-sweep campaign: one
// result, with per-solve solver statistics, for every query of a budget
// sweep over one synthetic topology, plus the campaign wall time. The
// campaign is the repository's reference workload for measuring the
// worker-pool speedup (EXPERIMENTS.md).
type SweepResult struct {
	System  string
	Workers int
	Queries []core.Query
	Results []*core.Result
	// Errors holds, per query index, the isolated failure (worker
	// panic, verification error) that prevented a result in a
	// keep-going campaign; nil entries mean the query finished.
	Errors  []error
	Elapsed time.Duration
}

// Failed counts the queries that produced an isolated error instead of
// a result.
func (sr *SweepResult) Failed() int {
	n := 0
	for _, err := range sr.Errors {
		if err != nil {
			n++
		}
	}
	return n
}

// SweepQueries builds the k-sweep campaign: every property of the
// paper under a combined failure budget k = 0..maxK (bad-data
// detectability with r = 1), plus a split-budget observability series.
func SweepQueries(maxK int) []core.Query {
	var qs []core.Query
	for k := 0; k <= maxK; k++ {
		qs = append(qs,
			core.Query{Property: core.Observability, Combined: true, K: k},
			core.Query{Property: core.SecuredObservability, Combined: true, K: k},
			core.Query{Property: core.BadDataDetectability, Combined: true, K: k, R: 1},
			core.Query{Property: core.Observability, K1: k, K2: 1},
		)
	}
	return qs
}

// KSweep runs the k-sweep campaign (k = 0..maxK) over a synthetic SCADA
// configuration of the named bus system on a pool of `workers`
// verification goroutines (<= 0 selects GOMAXPROCS). Verdicts and
// vectors are identical for every pool size; only Elapsed changes.
// Extra analyzer options (core.WithTrace, core.WithMetrics, ...) are
// threaded into every worker.
func KSweep(busName string, maxK, workers int, opts ...core.Option) (*SweepResult, error) {
	return KSweepCampaign(busName, maxK, workers, "", false, opts...)
}

// KSweepCampaign is KSweep with the fault-tolerance controls of a
// long-running campaign. With keepGoing, per-query failures (worker
// panics included) are isolated into SweepResult.Errors instead of
// aborting the sweep. With a non-empty checkpointPath, finished results
// stream to a resumable checkpoint bound to the campaign's fingerprint
// (configuration + query list): re-running with the same arguments
// skips completed queries, and a checkpoint from a different campaign
// is rejected with core.ErrCheckpointMismatch. A checkpoint implies
// keep-going: a campaign worth checkpointing is worth finishing.
func KSweepCampaign(busName string, maxK, workers int, checkpointPath string, keepGoing bool, opts ...core.Option) (*SweepResult, error) {
	sys, err := powergrid.ByName(busName)
	if err != nil {
		return nil, err
	}
	cfg, err := synth.Generate(synth.Params{
		Bus:            sys,
		Seed:           int64(1000*sys.NBuses + 7),
		Hierarchy:      2,
		SecureFraction: 0.9,
	})
	if err != nil {
		return nil, err
	}
	r := core.NewRunner(workers, opts...)
	queries := SweepQueries(maxK)

	var ck *core.Checkpoint
	if checkpointPath != "" {
		fp, err := core.CampaignFingerprint(cfg, core.CheckpointKindCampaign, queries)
		if err != nil {
			return nil, err
		}
		if ck, err = core.OpenCheckpoint(checkpointPath, core.CheckpointKindCampaign, fp); err != nil {
			return nil, err
		}
		keepGoing = true
	}

	start := time.Now()
	sr := &SweepResult{
		System:  busName,
		Workers: r.Workers(),
		Queries: queries,
	}
	if keepGoing {
		outcomes, err := r.VerifyAllResumable(context.Background(), cfg, queries, ck)
		if err != nil {
			return nil, err
		}
		sr.Results = make([]*core.Result, len(queries))
		sr.Errors = make([]error, len(queries))
		for i, o := range outcomes {
			sr.Results[i], sr.Errors[i] = o.Result, o.Err
		}
	} else {
		if sr.Results, err = r.VerifyAll(context.Background(), cfg, queries); err != nil {
			return nil, err
		}
	}
	sr.Elapsed = time.Since(start)
	return sr, nil
}

// PrintSweep renders the per-query instrumentation rows of a k-sweep
// campaign and its total wall time.
func PrintSweep(w io.Writer, sr *SweepResult) {
	fmt.Fprintf(w, "# k-sweep campaign: %s, %d queries, %d workers\n",
		sr.System, len(sr.Queries), sr.Workers)
	fmt.Fprintf(w, "%-42s %-6s %10s %10s %10s %12s %10s\n",
		"query", "status", "time(ms)", "decisions", "conflicts", "propagations", "learned")
	for i, res := range sr.Results {
		if res == nil {
			if len(sr.Errors) > i && sr.Errors[i] != nil {
				fmt.Fprintf(w, "%-42s %-6s %v\n", sr.Queries[i], "ERROR", sr.Errors[i])
			} else {
				fmt.Fprintf(w, "%-42s %-6s\n", sr.Queries[i], "-")
			}
			continue
		}
		fmt.Fprintf(w, "%-42s %-6v %10.2f %10d %10d %12d %10d\n",
			res.Query, res.Status, ms(res.Duration),
			res.Stats.Decisions, res.Stats.Conflicts,
			res.Stats.Propagations, res.Stats.Learned)
	}
	fmt.Fprintf(w, "campaign wall time: %.2f ms\n", ms(sr.Elapsed))
}

// PrintScale renders a Fig. 5/6 series as the paper's table rows.
func PrintScale(w io.Writer, title string, pts []ScalePoint) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-10s %6s %8s %10s %12s %12s %10s %10s\n",
		"point", "buses", "devices", "boundary-k", "sat(ms)", "unsat(ms)", "sat-conf", "unsat-conf")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %6d %8d %10.1f %12.2f %12.2f %10.1f %10.1f\n",
			p.Label, p.Buses, p.Devices, p.BoundaryK, p.SatMillis, p.UnsatMillis,
			p.SatConflicts, p.UnsatConflicts)
	}
}

// PrintResiliency renders Fig. 7(a) rows.
func PrintResiliency(w io.Writer, pts []ResiliencyPoint) {
	fmt.Fprintln(w, "# Fig 7(a): maximum resiliency vs measurement density (ieee14)")
	fmt.Fprintf(w, "%-10s %10s %10s\n", "percent", "max-IED", "max-RTU")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10.0f %10.1f %10.1f\n", p.Percent, p.MaxIED, p.MaxRTU)
	}
}

// PrintThreatSpace renders Fig. 7(b) rows.
func PrintThreatSpace(w io.Writer, pts []ThreatSpacePoint) {
	fmt.Fprintln(w, "# Fig 7(b): threat-space size vs hierarchy level (ieee14)")
	fmt.Fprintf(w, "%-10s %10s %10s %10s\n", "hierarchy", "(1,1)", "(2,1)", "(2,2)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %10.1f %10.1f %10.1f\n",
			p.Hierarchy, p.Vectors["(1,1)"], p.Vectors["(2,1)"], p.Vectors["(2,2)"])
	}
}

// CaseStudy runs the Section IV scenarios end to end and prints the
// paper-comparable outcomes. It is deliberately serial: the scenarios
// are few, cheap, and their narrative output order matters.
func CaseStudy(w io.Writer) error {
	for _, fig4 := range []bool{false, true} {
		topo := "Fig. 3"
		if fig4 {
			topo = "Fig. 4"
		}
		cfg, err := scadanet.CaseStudyConfig(fig4)
		if err != nil {
			return err
		}
		a, err := core.NewAnalyzer(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Case study, topology %s\n", topo)
		queries := []core.Query{
			{Property: core.Observability, K1: 1, K2: 1},
			{Property: core.Observability, K1: 2, K2: 1},
			{Property: core.SecuredObservability, K1: 1, K2: 1},
			{Property: core.SecuredObservability, K1: 1, K2: 0},
			{Property: core.SecuredObservability, K1: 0, K2: 1},
		}
		for _, q := range queries {
			res, err := a.Verify(q)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %v\n", res)
			if res.Status == sat.Sat {
				vs, err := a.EnumerateThreats(q, 20)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "    threat space: %d vectors: %v\n", len(vs), vs)
			}
		}
		mi, err := a.MaxResiliency(core.Observability, 0, true, false)
		if err != nil {
			return err
		}
		mr, err := a.MaxResiliency(core.Observability, 0, false, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  maximum observability resiliency: (%d IED-only, %d RTU-only)\n", mi, mr)
	}
	return nil
}
