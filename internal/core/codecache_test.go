package core

import (
	"context"
	"encoding/json"
	"sort"
	"sync"
	"testing"

	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
)

// cacheModes enumerates the four optimization configurations whose
// externally visible behaviour must coincide.
func cacheModes() []struct {
	name string
	opts func() []Option
} {
	return []struct {
		name string
		opts func() []Option
	}{
		{"baseline", func() []Option { return nil }},
		{"cache", func() []Option { return []Option{WithEncodingCache(NewEncodingCache())} }},
		{"presimplify", func() []Option { return []Option{WithPresimplify(true)} }},
		{"cache+presimplify", func() []Option {
			return []Option{WithEncodingCache(NewEncodingCache()), WithPresimplify(true)}
		}},
	}
}

// sortedVectors canonicalizes an enumerated threat space for set
// comparison (enumeration order is not part of the contract; the set
// is).
func sortedVectors(t *testing.T, vs []ThreatVector) string {
	t.Helper()
	keys := make([]string, len(vs))
	for i, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = string(b)
	}
	sort.Strings(keys)
	b, err := json.Marshal(keys)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCacheAndPresimplifyPreserveVerdicts is the end-to-end equivalence
// gate for the optimization pipeline: on synthetic IEEE-14 and IEEE-30
// systems, every core property verdict must be identical with the
// encoding cache and preprocessing on or off, across combined, split,
// link-budget and bad-data queries.
func TestCacheAndPresimplifyPreserveVerdicts(t *testing.T) {
	systems := []struct {
		name string
		bus  *powergrid.BusSystem
		seed int64
	}{
		{"ieee14", powergrid.IEEE14(), 7},
		{"ieee30", powergrid.IEEE30(), 11},
	}
	var queries []Query
	for k := 0; k <= 2; k++ {
		queries = append(queries,
			Query{Property: Observability, Combined: true, K: k},
			Query{Property: SecuredObservability, Combined: true, K: k},
			Query{Property: BadDataDetectability, Combined: true, K: k, R: 1},
			Query{Property: Observability, K1: k, K2: 1},
			Query{Property: Observability, Combined: true, K: k, KL: 1},
		)
	}
	for _, sys := range systems {
		cfg := synthConfig(t, sys.bus, sys.seed, 2)
		want := make([]sat.Status, len(queries))
		for _, mode := range cacheModes() {
			a, err := NewAnalyzer(cfg, mode.opts()...)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				res, err := a.Verify(q)
				if err != nil {
					t.Fatalf("%s/%s %v: %v", sys.name, mode.name, q, err)
				}
				if mode.name == "baseline" {
					want[i] = res.Status
					continue
				}
				if res.Status != want[i] {
					t.Errorf("%s/%s %v: status %v, baseline %v",
						sys.name, mode.name, q, res.Status, want[i])
				}
			}
		}
	}
}

// TestCacheAndPresimplifyPreserveEnumeration: the full minimal
// threat-vector set (an order-independent antichain) must be identical
// across all optimization modes, byte for byte after canonical sorting.
func TestCacheAndPresimplifyPreserveEnumeration(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	queries := []Query{
		{Property: Observability, Combined: true, K: 2},
		{Property: SecuredObservability, K1: 1, K2: 1},
		{Property: BadDataDetectability, Combined: true, K: 1, R: 1},
	}
	for _, q := range queries {
		want := ""
		for _, mode := range cacheModes() {
			a, err := NewAnalyzer(cfg, mode.opts()...)
			if err != nil {
				t.Fatal(err)
			}
			vs, err := a.EnumerateThreats(q, 0)
			if err != nil {
				t.Fatalf("%s %v: %v", mode.name, q, err)
			}
			got := sortedVectors(t, vs)
			if mode.name == "baseline" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s %v: threat set diverged\n got %s\nwant %s", mode.name, q, got, want)
			}
		}
	}
}

// TestCacheSweepAgreesWithVerify: resiliency boundaries computed on the
// sweep fast path must not move under caching/preprocessing.
func TestCacheSweepAgreesWithVerify(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 19, 2)
	base, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.MaxResiliencyCombined(SecuredObservability, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range cacheModes()[1:] {
		a, err := NewAnalyzer(cfg, mode.opts()...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.MaxResiliencyCombined(SecuredObservability, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: max resiliency %d, baseline %d", mode.name, got, want)
		}
	}
}

// TestEncodingCacheSingleflight: analyzers sharing one cache build each
// distinct structure exactly once, even when they race, and distinct
// (property, r, kl) structures get distinct entries.
func TestEncodingCacheSingleflight(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	cache := NewEncodingCache()
	q := Query{Property: Observability, Combined: true, K: 1}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := NewAnalyzer(cfg, WithEncodingCache(cache), WithPresimplify(true))
			if err != nil {
				errs <- err
				return
			}
			if _, err := a.Verify(q); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := cache.Len(); got != 1 {
		t.Fatalf("cache entries after identical concurrent queries: %d, want 1", got)
	}

	a, err := NewAnalyzer(cfg, WithEncodingCache(cache), WithPresimplify(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Property: SecuredObservability, Combined: true, K: 1},
		{Property: Observability, Combined: true, K: 1, KL: 1},
		{Property: BadDataDetectability, Combined: true, K: 1, R: 1},
	} {
		if _, err := a.Verify(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != 4 {
		t.Fatalf("cache entries after three new structures: %d, want 4", got)
	}
	// Same structure, different budget: no new entry.
	if _, err := a.Verify(Query{Property: Observability, K1: 2, K2: 0}); err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got != 4 {
		t.Fatalf("cache entries after budget-only variation: %d, want 4", got)
	}
}

// TestCacheRunnerEquivalence: a parallel campaign over a shared cache
// reproduces, index by index, the serial uncached results' statuses on
// the repo's standard campaign query mix.
func TestCacheRunnerEquivalence(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(2)

	serial := make([]*Result, len(queries))
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if serial[i], err = a.Verify(q); err != nil {
			t.Fatal(err)
		}
	}

	cache := NewEncodingCache()
	parallel, err := NewRunner(8, WithEncodingCache(cache), WithPresimplify(true)).
		VerifyAll(context.Background(), cfg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if parallel[i].Status != serial[i].Status {
			t.Errorf("query %v: parallel cached %v, serial %v",
				queries[i], parallel[i].Status, serial[i].Status)
		}
	}
	if cache.Len() == 0 {
		t.Fatal("campaign did not populate the shared cache")
	}
}

// TestCachePreprocessAccounting: the query that builds a snapshot
// reports the preprocessing phase and counters; cache hits do not
// re-pay them.
func TestCachePreprocessAccounting(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	a, err := NewAnalyzer(cfg, WithEncodingCache(NewEncodingCache()), WithPresimplify(true))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Property: SecuredObservability, Combined: true, K: 1}
	first, err := a.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Phases.Preprocess <= 0 {
		t.Errorf("builder query Preprocess = %v, want > 0", first.Phases.Preprocess)
	}
	if first.Stats.SimplifyTime <= 0 || first.Stats.ElimVars == 0 {
		t.Errorf("builder query preprocessing stats missing: %+v", first.Stats)
	}
	second, err := a.Verify(Query{Property: SecuredObservability, Combined: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if second.Phases.Preprocess != 0 {
		t.Errorf("cache-hit query Preprocess = %v, want 0", second.Phases.Preprocess)
	}
	if second.Stats.SimplifyTime != 0 || second.Stats.ElimVars != 0 {
		t.Errorf("cache-hit query repeated preprocessing stats: %+v", second.Stats)
	}
}

// TestPreprocessMetricsExported: a preprocessing verification exports
// the sat_elim_vars counter, the sat_simplify_seconds histogram, and a
// preprocess series in the phase histogram — and a plain verification
// exports none of them, keeping non-preprocessing dashboards unchanged.
func TestPreprocessMetricsExported(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	reg := obs.NewRegistry()
	// Cache + presimplify: the builder query carries the snapshot's
	// preprocessing counters, so variable elimination is observable even
	// when the per-query instance would be fully decided by propagation.
	a, err := NewAnalyzer(cfg, WithMetrics(reg), WithPresimplify(true),
		WithEncodingCache(NewEncodingCache()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(Query{Property: SecuredObservability, Combined: true, K: 1}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var elim float64
	foundElim := false
	for _, c := range snap.Counters {
		if c.Name == "scadaver_sat_elim_vars_total" {
			foundElim, elim = true, c.Value
		}
	}
	if !foundElim || elim <= 0 {
		t.Errorf("scadaver_sat_elim_vars_total missing or zero (found=%v value=%v)", foundElim, elim)
	}
	foundSimp, foundPhase := false, false
	for _, h := range snap.Histograms {
		if h.Name == "scadaver_sat_simplify_seconds" {
			foundSimp = true
		}
		if h.Name == "scadaver_phase_seconds" && h.Labels["phase"] == "preprocess" {
			foundPhase = true
		}
	}
	if !foundSimp {
		t.Error("scadaver_sat_simplify_seconds histogram missing")
	}
	if !foundPhase {
		t.Error(`scadaver_phase_seconds{phase="preprocess"} series missing`)
	}

	plain := obs.NewRegistry()
	b, err := NewAnalyzer(cfg, WithMetrics(plain))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(Query{Property: SecuredObservability, Combined: true, K: 1}); err != nil {
		t.Fatal(err)
	}
	for _, c := range plain.Snapshot().Counters {
		if c.Name == "scadaver_sat_elim_vars_total" {
			t.Error("plain verification exported preprocessing counters")
		}
	}
	for _, h := range plain.Snapshot().Histograms {
		if h.Name == "scadaver_sat_simplify_seconds" ||
			(h.Name == "scadaver_phase_seconds" && h.Labels["phase"] == "preprocess") {
			t.Errorf("plain verification exported %s{%v}", h.Name, h.Labels)
		}
	}
}
