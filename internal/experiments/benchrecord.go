package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/obs"
)

// BenchSchema versions the BENCH_pr2.json layout.
const BenchSchema = "scadaver-bench/2"

// BenchFigure is one benchmark campaign of a recorded run: its wall
// time, the time spent inside the SAT solve phase (from the campaign's
// metrics registry), the solver conflicts, and the number of queries
// answered. Solve time well below wall time means the run is dominated
// by encoding or orchestration, not search.
type BenchFigure struct {
	Figure    string  `json:"figure"` // e.g. "ksweep" or "boundary"
	System    string  `json:"system"` // bus system, e.g. "ieee57"
	Queries   float64 `json:"queries"`
	WallMs    float64 `json:"wallMs"`
	SolveMs   float64 `json:"solveMs"`
	Conflicts float64 `json:"conflicts"`
}

// BenchRun is the machine-readable record of one benchmark run,
// written by `make bench-record` to BENCH_pr2.json so successive
// commits can be compared number-by-number.
type BenchRun struct {
	Schema      string        `json:"schema"`
	Workers     int           `json:"workers"`
	Figures     []BenchFigure `json:"figures"`
	TotalWallMs float64       `json:"totalWallMs"`
}

// registryTotals folds a campaign's metrics registry into the record's
// summary numbers: total queries, solver conflicts, and seconds spent
// in the solve phase, summed over every label set.
func registryTotals(reg *obs.Registry) (queries, conflicts, solveSec float64) {
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		switch c.Name {
		case "scadaver_queries_total":
			queries += c.Value
		case "scadaver_solver_conflicts_total":
			conflicts += c.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "scadaver_phase_seconds" && h.Labels["phase"] == "solve" {
			solveSec += h.Sum
		}
	}
	return queries, conflicts, solveSec
}

// BenchRecord runs the recorded benchmark campaign: for every system
// (default IEEE 14/30/57), a resiliency-boundary campaign (the Fig. 5
// workload on one input) and the parallel k-sweep campaign, each
// instrumented through its own metrics registry; then a boundary-only
// row for each system in BoundaryOnly (default IEEE 118 — feasible at
// the boundary since the portfolio, but its full k-sweep is not).
// opt.Trace is threaded through so a recorded run can also produce a
// full phase trace. With opt.Certify, each system additionally gets a
// "ksweep-certify" row — the same k-sweep with verdict certification
// armed — while the base rows stay uncertified, so the certification
// overhead (EXPERIMENTS.md §R3) reads directly as
// ksweep-certify/ksweep and the base rows remain comparable to
// earlier uncertified records.
func BenchRecord(opt Options) (*BenchRun, error) {
	boundaryOnly := opt.BoundaryOnly
	if len(opt.Systems) == 0 {
		opt.Systems = []string{"ieee14", "ieee30", "ieee57"}
		if boundaryOnly == nil {
			boundaryOnly = []string{"ieee118"}
		}
	}
	certify := opt.Certify
	opt.Certify = false
	opt = opt.withDefaults()

	run := &BenchRun{Schema: BenchSchema, Workers: core.NewRunner(opt.Workers).Workers()}
	start := time.Now()
	boundary := func(sys string) error {
		// Boundary campaign: Fig. 5 timing methodology on one input.
		bOpt := opt
		bOpt.Systems = []string{sys}
		bOpt.Inputs = 1
		bOpt.Metrics = obs.NewRegistry()
		t0 := time.Now()
		if _, err := Fig5(core.Observability, bOpt); err != nil {
			return fmt.Errorf("boundary campaign %s: %w", sys, err)
		}
		run.Figures = append(run.Figures, benchFigure("boundary", sys, time.Since(t0), bOpt.Metrics))
		return nil
	}
	for _, sys := range opt.Systems {
		if err := boundary(sys); err != nil {
			return nil, err
		}

		// K-sweep campaign: the worker-pool reference workload.
		reg := obs.NewRegistry()
		kOpts := append(opt.CoreOptions(), core.WithMetrics(reg))
		sr, err := KSweep(sys, opt.MaxK, opt.Workers, kOpts...)
		if err != nil {
			return nil, fmt.Errorf("ksweep campaign %s: %w", sys, err)
		}
		fig := benchFigure("ksweep", sys, sr.Elapsed, reg)
		run.Figures = append(run.Figures, fig)
		if int(fig.Queries) != len(sr.Queries) {
			return nil, fmt.Errorf("ksweep %s: metrics recorded %v queries, campaign ran %d",
				sys, fig.Queries, len(sr.Queries))
		}

		if certify {
			// The certified twin of the k-sweep just recorded: identical
			// queries, every verdict proof-checked and audited.
			creg := obs.NewRegistry()
			cOpt := opt
			cOpt.Certify = true
			csr, err := KSweep(sys, opt.MaxK, opt.Workers, append(cOpt.CoreOptions(), core.WithMetrics(creg))...)
			if err != nil {
				return nil, fmt.Errorf("certified ksweep campaign %s: %w", sys, err)
			}
			for k, res := range csr.Results {
				if res == nil || sr.Results[k] == nil {
					continue
				}
				if res.Status != sr.Results[k].Status {
					return nil, fmt.Errorf("certified ksweep %s: query %d verdict %v diverges from uncertified %v",
						sys, k, res.Status, sr.Results[k].Status)
				}
				if !res.Certified {
					return nil, fmt.Errorf("certified ksweep %s: query %d uncertified: %s",
						sys, k, res.CertifyError)
				}
			}
			run.Figures = append(run.Figures, benchFigure("ksweep-certify", sys, csr.Elapsed, creg))
		}
	}
	for _, sys := range boundaryOnly {
		if err := boundary(sys); err != nil {
			return nil, err
		}
	}

	// Mutation-storm rows: the delta-aware re-verification headline.
	// Random single-link deltas on IEEE-57, re-verified incrementally
	// (mutate-incremental: the delta cache evolves warm snapshots) and
	// cold (mutate-cold: full re-encode per step); both legs' verdicts
	// are checked identical inside the campaign, and the wall-time ratio
	// is the optimization's recorded speedup.
	for _, sys := range opt.Systems {
		if sys != "ieee57" {
			continue
		}
		storm, err := MutationStorm(sys, 10, opt)
		if err != nil {
			return nil, fmt.Errorf("mutation storm %s: %w", sys, err)
		}
		run.Figures = append(run.Figures,
			benchFigure("mutate-incremental", sys, storm.Incremental, storm.IncReg),
			benchFigure("mutate-cold", sys, storm.Cold, storm.ColdReg))
	}
	run.TotalWallMs = ms(time.Since(start))
	return run, nil
}

func benchFigure(figure, system string, wall time.Duration, reg *obs.Registry) BenchFigure {
	queries, conflicts, solveSec := registryTotals(reg)
	return BenchFigure{
		Figure:    figure,
		System:    system,
		Queries:   queries,
		WallMs:    ms(wall),
		SolveMs:   solveSec * 1e3,
		Conflicts: conflicts,
	}
}

// WriteBenchRun renders the record as indented JSON.
func WriteBenchRun(w io.Writer, run *BenchRun) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(run)
}
