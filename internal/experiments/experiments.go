// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): scalability of the resiliency verification
// with problem size (Fig. 5a/5b), the impact of the hierarchy level on
// execution time (Fig. 6a/6b), maximum resiliency versus measurement
// density (Fig. 7a), and the threat-space size versus hierarchy
// (Fig. 7b), plus the Section IV case-study scenarios. It is shared by
// cmd/scada-bench and the repository's testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"scadaver/internal/core"
	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/synth"
)

// Options tunes experiment effort. The paper uses at least 3 random
// inputs per point and at least 5 runs per input.
type Options struct {
	Inputs int // random inputs per point (default 3)
	Runs   int // timed runs per input (default 5)

	// Systems restricts Fig5 to a subset of the bus systems (default:
	// ieee14, ieee30, ieee57, ieee118).
	Systems []string
	// MaxHierarchy bounds the Fig6/Fig7b sweep (default 4).
	MaxHierarchy int
	// Percents restricts the Fig7a density sweep (default 50..100 by 10).
	Percents []float64
}

func (o Options) withDefaults() Options {
	if o.Inputs <= 0 {
		o.Inputs = 3
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if len(o.Systems) == 0 {
		o.Systems = []string{"ieee14", "ieee30", "ieee57", "ieee118"}
	}
	if o.MaxHierarchy <= 0 {
		o.MaxHierarchy = 4
	}
	if len(o.Percents) == 0 {
		o.Percents = []float64{50, 60, 70, 80, 90, 100}
	}
	return o
}

// ScalePoint is one x-position of a timing figure: average execution
// time of the verification for satisfiable and unsatisfiable
// specifications at the resiliency boundary.
type ScalePoint struct {
	Label       string  // e.g. "ieee30" or "h=2"
	Buses       int     // problem size
	Devices     int     // IEDs + RTUs (averaged over inputs)
	BoundaryK   float64 // average maximum-resiliency k
	SatMillis   float64 // avg time of the sat query (k*+1)
	UnsatMillis float64 // avg time of the unsat query (k*)
}

// timedVerify runs the query `runs` times and returns the average
// duration plus the (stable) status.
func timedVerify(a *core.Analyzer, q core.Query, runs int) (time.Duration, sat.Status, error) {
	var total time.Duration
	var status sat.Status
	for i := 0; i < runs; i++ {
		res, err := a.Verify(q)
		if err != nil {
			return 0, sat.Unsolved, err
		}
		total += res.Duration
		status = res.Status
	}
	return total / time.Duration(runs), status, nil
}

// boundaryTimes finds the instance's resiliency boundary k* for the
// property (combined budget) and times the unsat query at k* and the sat
// query at k*+1 — the paper's sat/unsat series at a meaningful spec.
func boundaryTimes(cfg *scadanet.Config, prop core.Property, runs int) (kStar int, satMs, unsatMs float64, err error) {
	a, err := core.NewAnalyzer(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	kStar, err = a.MaxResiliencyCombined(prop, cfg.R)
	if err != nil {
		return 0, 0, 0, err
	}
	unsatK := kStar
	if unsatK < 0 {
		// Even zero failures violate the property (e.g. weak security
		// profiles under secured observability); there is no unsat
		// query — time the k=0 sat query on both series.
		unsatK = 0
	}
	du, _, err := timedVerify(a, core.Query{Property: prop, Combined: true, K: unsatK, R: cfg.R}, runs)
	if err != nil {
		return 0, 0, 0, err
	}
	ds, _, err := timedVerify(a, core.Query{Property: prop, Combined: true, K: kStar + 1, R: cfg.R}, runs)
	if err != nil {
		return 0, 0, 0, err
	}
	return kStar, ms(ds), ms(du), nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func deviceCount(cfg *scadanet.Config) int {
	return len(cfg.Net.DevicesOfKind(scadanet.IED)) + len(cfg.Net.DevicesOfKind(scadanet.RTU))
}

// Fig5 measures verification time versus problem size over the IEEE
// 14/30/57/118-bus systems — Fig. 5(a) with Observability, Fig. 5(b)
// with SecuredObservability.
func Fig5(prop core.Property, opt Options) ([]ScalePoint, error) {
	opt = opt.withDefaults()
	var out []ScalePoint
	for _, name := range opt.Systems {
		sys, err := powergrid.ByName(name)
		if err != nil {
			return nil, err
		}
		pt := ScalePoint{Label: name, Buses: sys.NBuses}
		for i := 0; i < opt.Inputs; i++ {
			cfg, err := synth.Generate(synth.Params{
				Bus:       sys,
				Seed:      int64(1000*sys.NBuses + i),
				Hierarchy: 2,
				// Fully secured uplinks keep the observability and
				// secured-observability boundaries aligned, so Fig. 5(a)
				// vs 5(b) isolates the model-size effect of the security
				// constraints, as in the paper.
				SecureFraction: 1,
			})
			if err != nil {
				return nil, err
			}
			k, satMs, unsatMs, err := boundaryTimes(cfg, prop, opt.Runs)
			if err != nil {
				return nil, err
			}
			pt.Devices += deviceCount(cfg)
			pt.BoundaryK += float64(k)
			pt.SatMillis += satMs
			pt.UnsatMillis += unsatMs
		}
		pt.Devices /= opt.Inputs
		pt.BoundaryK /= float64(opt.Inputs)
		pt.SatMillis /= float64(opt.Inputs)
		pt.UnsatMillis /= float64(opt.Inputs)
		out = append(out, pt)
	}
	return out, nil
}

// Fig6 measures verification time versus hierarchy level on one bus
// system — Fig. 6(a) uses ieee14, Fig. 6(b) ieee57. Following the
// paper's methodology, each random input is verified against fixed
// specifications (k = 1 and k = 2) and the measured times are bucketed
// by the query's outcome into the satisfiable and unsatisfiable series.
func Fig6(busName string, prop core.Property, opt Options) ([]ScalePoint, error) {
	opt = opt.withDefaults()
	sys, err := powergrid.ByName(busName)
	if err != nil {
		return nil, err
	}
	var out []ScalePoint
	for h := 1; h <= opt.MaxHierarchy; h++ {
		pt := ScalePoint{Label: fmt.Sprintf("h=%d", h), Buses: sys.NBuses}
		satN, unsatN := 0, 0
		var kSum float64
		for i := 0; i < opt.Inputs; i++ {
			cfg, err := synth.Generate(synth.Params{
				Bus:            sys,
				Seed:           int64(100*h + i),
				Hierarchy:      h,
				SecureFraction: 0.9,
			})
			if err != nil {
				return nil, err
			}
			a, err := core.NewAnalyzer(cfg)
			if err != nil {
				return nil, err
			}
			pt.Devices += deviceCount(cfg)
			for _, k := range []int{0, 1, 2, 4} {
				d, status, err := timedVerify(a, core.Query{Property: prop, Combined: true, K: k}, opt.Runs)
				if err != nil {
					return nil, err
				}
				kSum += float64(k)
				switch status {
				case sat.Sat:
					pt.SatMillis += ms(d)
					satN++
				case sat.Unsat:
					pt.UnsatMillis += ms(d)
					unsatN++
				}
			}
		}
		pt.Devices /= opt.Inputs
		pt.BoundaryK = kSum / float64(4*opt.Inputs)
		if satN > 0 {
			pt.SatMillis /= float64(satN)
		}
		if unsatN > 0 {
			pt.UnsatMillis /= float64(unsatN)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ResiliencyPoint is one x-position of Fig. 7(a): maximum tolerable
// IED-only and RTU-only failures at a measurement density.
type ResiliencyPoint struct {
	Percent float64
	MaxIED  float64
	MaxRTU  float64
}

// Fig7a measures maximum resiliency versus measurement density on the
// 14-bus system.
func Fig7a(opt Options) ([]ResiliencyPoint, error) {
	opt = opt.withDefaults()
	sys := powergrid.IEEE14()
	var out []ResiliencyPoint
	for _, pct := range opt.Percents {
		pt := ResiliencyPoint{Percent: pct}
		for i := 0; i < opt.Inputs; i++ {
			cfg, err := synth.Generate(synth.Params{
				Bus:                sys,
				Seed:               int64(10*pct) + int64(i),
				Hierarchy:          1,
				MeasurementPercent: pct,
				SecureFraction:     1,
			})
			if err != nil {
				return nil, err
			}
			a, err := core.NewAnalyzer(cfg)
			if err != nil {
				return nil, err
			}
			mi, err := a.MaxResiliency(core.Observability, 0, true, false)
			if err != nil {
				return nil, err
			}
			mr, err := a.MaxResiliency(core.Observability, 0, false, true)
			if err != nil {
				return nil, err
			}
			pt.MaxIED += float64(mi)
			pt.MaxRTU += float64(mr)
		}
		pt.MaxIED /= float64(opt.Inputs)
		pt.MaxRTU /= float64(opt.Inputs)
		out = append(out, pt)
	}
	return out, nil
}

// ThreatSpacePoint is one x-position of Fig. 7(b): the number of
// distinct minimal threat vectors per hierarchy level, for several
// resiliency specifications.
type ThreatSpacePoint struct {
	Hierarchy int
	// Vectors maps a spec label like "(1,1)" to the averaged count.
	Vectors map[string]float64
}

// ThreatEnumerationCap bounds threat-space counting.
const ThreatEnumerationCap = 500

// Fig7b measures the threat-space size versus hierarchy on the 14-bus
// system for the specs (1,1), (2,1) and (2,2).
func Fig7b(opt Options) ([]ThreatSpacePoint, error) {
	opt = opt.withDefaults()
	sys := powergrid.IEEE14()
	specs := []struct {
		label  string
		k1, k2 int
	}{
		{"(1,1)", 1, 1},
		{"(2,1)", 2, 1},
		{"(2,2)", 2, 2},
	}
	var out []ThreatSpacePoint
	for h := 1; h <= opt.MaxHierarchy; h++ {
		pt := ThreatSpacePoint{Hierarchy: h, Vectors: map[string]float64{}}
		for i := 0; i < opt.Inputs; i++ {
			cfg, err := synth.Generate(synth.Params{
				Bus:            sys,
				Seed:           int64(7000 + 10*h + i),
				Hierarchy:      h,
				SecureFraction: 1,
			})
			if err != nil {
				return nil, err
			}
			a, err := core.NewAnalyzer(cfg)
			if err != nil {
				return nil, err
			}
			for _, s := range specs {
				n, err := a.CountThreats(core.Query{Property: core.Observability, K1: s.k1, K2: s.k2}, ThreatEnumerationCap)
				if err != nil {
					return nil, err
				}
				pt.Vectors[s.label] += float64(n)
			}
		}
		for k := range pt.Vectors {
			pt.Vectors[k] /= float64(opt.Inputs)
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintScale renders a Fig. 5/6 series as the paper's table rows.
func PrintScale(w io.Writer, title string, pts []ScalePoint) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-10s %6s %8s %10s %12s %12s\n", "point", "buses", "devices", "boundary-k", "sat(ms)", "unsat(ms)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %6d %8d %10.1f %12.2f %12.2f\n",
			p.Label, p.Buses, p.Devices, p.BoundaryK, p.SatMillis, p.UnsatMillis)
	}
}

// PrintResiliency renders Fig. 7(a) rows.
func PrintResiliency(w io.Writer, pts []ResiliencyPoint) {
	fmt.Fprintln(w, "# Fig 7(a): maximum resiliency vs measurement density (ieee14)")
	fmt.Fprintf(w, "%-10s %10s %10s\n", "percent", "max-IED", "max-RTU")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10.0f %10.1f %10.1f\n", p.Percent, p.MaxIED, p.MaxRTU)
	}
}

// PrintThreatSpace renders Fig. 7(b) rows.
func PrintThreatSpace(w io.Writer, pts []ThreatSpacePoint) {
	fmt.Fprintln(w, "# Fig 7(b): threat-space size vs hierarchy level (ieee14)")
	fmt.Fprintf(w, "%-10s %10s %10s %10s\n", "hierarchy", "(1,1)", "(2,1)", "(2,2)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %10.1f %10.1f %10.1f\n",
			p.Hierarchy, p.Vectors["(1,1)"], p.Vectors["(2,1)"], p.Vectors["(2,2)"])
	}
}

// CaseStudy runs the Section IV scenarios end to end and prints the
// paper-comparable outcomes.
func CaseStudy(w io.Writer) error {
	for _, fig4 := range []bool{false, true} {
		topo := "Fig. 3"
		if fig4 {
			topo = "Fig. 4"
		}
		cfg, err := scadanet.CaseStudyConfig(fig4)
		if err != nil {
			return err
		}
		a, err := core.NewAnalyzer(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Case study, topology %s\n", topo)
		queries := []core.Query{
			{Property: core.Observability, K1: 1, K2: 1},
			{Property: core.Observability, K1: 2, K2: 1},
			{Property: core.SecuredObservability, K1: 1, K2: 1},
			{Property: core.SecuredObservability, K1: 1, K2: 0},
			{Property: core.SecuredObservability, K1: 0, K2: 1},
		}
		for _, q := range queries {
			res, err := a.Verify(q)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %v\n", res)
			if res.Status == sat.Sat {
				vs, err := a.EnumerateThreats(q, 20)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "    threat space: %d vectors: %v\n", len(vs), vs)
			}
		}
		mi, err := a.MaxResiliency(core.Observability, 0, true, false)
		if err != nil {
			return err
		}
		mr, err := a.MaxResiliency(core.Observability, 0, false, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  maximum observability resiliency: (%d IED-only, %d RTU-only)\n", mi, mr)
	}
	return nil
}
