package serve

import (
	"context"
	"time"

	"scadaver/internal/obs"
)

// job is one admitted unit of verification work. The handler goroutine
// builds it, the admission queue carries it, a pool worker executes run
// and closes done; the handler then writes the response. Exactly one
// worker touches a job after admission, so the fields need no locking —
// the done channel is the happens-before edge back to the handler.
type job struct {
	id    int64  // request sequence number (PanicError index, logs)
	route string // metric label

	// ctx bounds the whole request: client disconnect, the derived
	// request deadline, and server drain all cancel it.
	ctx context.Context
	// run does the verification. It is executed under panic isolation;
	// its error (including a recovered *core.PanicError) lands in err.
	run func(ctx context.Context) error

	err      error
	done     chan struct{}
	enqueued time.Time
}

// queue is the bounded admission queue in front of the worker pool.
// Enqueueing never blocks: when the queue is full the request is shed
// at the HTTP layer with 429 Retry-After instead of piling up
// goroutines — under overload the server's memory stays bounded by
// depth + workers, and excess load is pushed back to clients.
type queue struct {
	ch  chan *job
	reg *obs.Registry
}

func newQueue(depth int, reg *obs.Registry) *queue {
	return &queue{ch: make(chan *job, depth), reg: reg}
}

// tryEnqueue admits the job if a slot is free and reports whether it
// did. It never blocks.
func (q *queue) tryEnqueue(j *job) bool {
	select {
	case q.ch <- j:
		q.reg.SetGauge("scadaver_queue_depth", nil, float64(len(q.ch)))
		return true
	default:
		return false
	}
}

// dequeue returns the next job, or nil when quit closes first.
func (q *queue) dequeue(quit <-chan struct{}) *job {
	select {
	case j := <-q.ch:
		q.reg.SetGauge("scadaver_queue_depth", nil, float64(len(q.ch)))
		return j
	case <-quit:
		return nil
	}
}

// depth returns the current queue occupancy.
func (q *queue) depth() int { return len(q.ch) }

// capacity returns the configured queue depth.
func (q *queue) capacity() int { return cap(q.ch) }
