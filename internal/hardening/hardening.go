// Package hardening synthesizes configuration changes that make a SCADA
// system satisfy a resiliency specification — the automated-synthesis
// direction the paper names as future work ("the automated synthesis of
// necessary configurations for resilient SCADA systems").
//
// The planner runs a counterexample-guided loop: verify the
// specification; while it is violated, enumerate the threat vectors,
// generate candidate remediations (upgrading a link's security profile,
// or adding a redundant uplink), score each candidate by how far it
// shrinks the remaining threat space, apply the best one, and repeat.
package hardening

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"scadaver/internal/core"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// ActionKind classifies a remediation.
type ActionKind int

// The remediation kinds the planner proposes.
const (
	// UpgradeLinkSecurity replaces a link's security profile with an
	// authenticated and integrity-protected one.
	UpgradeLinkSecurity ActionKind = iota + 1
	// AddRedundantLink adds a new secured link between two devices.
	AddRedundantLink
)

// Action is one applied remediation.
type Action struct {
	Kind     ActionKind
	Link     scadanet.LinkID   // UpgradeLinkSecurity: the upgraded link
	A, B     scadanet.DeviceID // AddRedundantLink: the new endpoints
	Profiles []secpolicy.Profile
	Cost     int
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Kind {
	case UpgradeLinkSecurity:
		return fmt.Sprintf("upgrade link %d to [%s] (cost %d)",
			a.Link, secpolicy.FormatProfiles(a.Profiles), a.Cost)
	case AddRedundantLink:
		return fmt.Sprintf("add link %d-%d with [%s] (cost %d)",
			a.A, a.B, secpolicy.FormatProfiles(a.Profiles), a.Cost)
	}
	return "unknown action"
}

// Plan is the synthesized remediation sequence.
type Plan struct {
	Actions   []Action
	TotalCost int
	Achieved  bool // the specification holds after applying Actions
	Rounds    int
	Config    *scadanet.Config // the hardened configuration
	Final     *core.Result
}

// String summarizes the plan.
func (p *Plan) String() string {
	var sb strings.Builder
	status := "NOT achieved"
	if p.Achieved {
		status = "achieved"
	}
	fmt.Fprintf(&sb, "hardening plan: %s in %d rounds, total cost %d\n",
		status, p.Rounds, p.TotalCost)
	for i, a := range p.Actions {
		fmt.Fprintf(&sb, "  %d. %v\n", i+1, a)
	}
	return sb.String()
}

// Options tunes the planner.
type Options struct {
	// MaxRounds bounds the synthesize loop (default 16).
	MaxRounds int
	// MaxThreats caps threat-space enumeration while scoring
	// (default 50).
	MaxThreats int
	// UpgradeCost and AddLinkCost weight the two action kinds
	// (defaults 1 and 3).
	UpgradeCost, AddLinkCost int
	// Policy overrides the security policy (default secpolicy.Default).
	Policy *secpolicy.Policy
}

func (o Options) withDefaults() Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 16
	}
	if o.MaxThreats <= 0 {
		o.MaxThreats = 50
	}
	if o.UpgradeCost <= 0 {
		o.UpgradeCost = 1
	}
	if o.AddLinkCost <= 0 {
		o.AddLinkCost = 3
	}
	if o.Policy == nil {
		o.Policy = secpolicy.Default()
	}
	return o
}

// ErrNoProgress is returned when the remaining violations cannot be
// removed by any candidate action (within MaxRounds).
var ErrNoProgress = errors.New("hardening: no candidate action reduces the threat space")

// strongProfile is the profile the planner deploys: authenticated
// (CHAP) and integrity-protected (SHA-2/256).
func strongProfile() []secpolicy.Profile {
	return []secpolicy.Profile{
		{Algo: secpolicy.CHAP, KeyBits: 64},
		{Algo: secpolicy.SHA2, KeyBits: 256},
	}
}

// Synthesize computes a remediation plan that makes cfg satisfy the
// query. The input configuration is never modified; the hardened copy is
// returned inside the plan. A plan with Achieved == false is returned
// together with ErrNoProgress when the loop stalls.
func Synthesize(cfg *scadanet.Config, q core.Query, opt Options) (*Plan, error) {
	opt = opt.withDefaults()
	work := cfg.Clone()
	plan := &Plan{Config: work}

	for round := 1; round <= opt.MaxRounds; round++ {
		plan.Rounds = round
		analyzer, err := core.NewAnalyzer(work, core.WithPolicy(opt.Policy))
		if err != nil {
			return nil, err
		}
		res, err := analyzer.Verify(q)
		if err != nil {
			return nil, err
		}
		plan.Final = res
		if res.Resilient() {
			plan.Achieved = true
			return plan, nil
		}
		threats, err := analyzer.EnumerateThreats(q, opt.MaxThreats)
		if err != nil {
			return nil, err
		}
		current, err := scoreOf(work, q, opt)
		if err != nil {
			return nil, err
		}

		chosen, err := pickBest(work, q, opt, threats, current)
		if err != nil {
			return nil, err
		}
		if len(chosen) == 0 {
			return plan, ErrNoProgress
		}
		for _, act := range chosen {
			if err := apply(work, act); err != nil {
				return nil, err
			}
			plan.Actions = append(plan.Actions, act)
			plan.TotalCost += act.Cost
		}
	}
	return plan, ErrNoProgress
}

// score orders candidate outcomes: fewer threat vectors first, then
// (for secured properties) more securely delivered measurements — the
// progress measure that lets chains of upgrades through bottleneck hops
// pay off across rounds.
type score struct {
	threats int
	secured int // negated ordering: larger is better
}

func (s score) better(o score) bool {
	if s.threats != o.threats {
		return s.threats < o.threats
	}
	return s.secured > o.secured
}

func scoreOf(cfg *scadanet.Config, q core.Query, opt Options) (score, error) {
	analyzer, err := core.NewAnalyzer(cfg, core.WithPolicy(opt.Policy))
	if err != nil {
		return score{}, err
	}
	n, err := analyzer.CountThreats(q, opt.MaxThreats)
	if err != nil {
		return score{}, err
	}
	sec := len(analyzer.DeliveredMeasurements(nil, true))
	return score{threats: n, secured: sec}, nil
}

// pickBest returns the action (or, when no single action improves the
// score, the best improving pair of actions) to apply next; nil when
// nothing improves.
func pickBest(cfg *scadanet.Config, q core.Query, opt Options, threats []core.ThreatVector, current score) ([]Action, error) {
	candidates := propose(cfg, q, opt, threats)

	type scored struct {
		acts []Action
		sc   score
		cost int
	}
	var best *scored
	consider := func(acts []Action) error {
		trial := cfg.Clone()
		cost := 0
		for _, a := range acts {
			if err := apply(trial, a); err != nil {
				return nil // e.g. overlapping pair; skip silently
			}
			cost += a.Cost
		}
		sc, err := scoreOf(trial, q, opt)
		if err != nil {
			return err
		}
		if !sc.better(current) {
			return nil
		}
		if best == nil || sc.better(best.sc) || (sc == best.sc && cost < best.cost) {
			best = &scored{acts: append([]Action(nil), acts...), sc: sc, cost: cost}
		}
		return nil
	}

	for i := range candidates {
		if err := consider(candidates[i : i+1]); err != nil {
			return nil, err
		}
	}
	if best != nil {
		return best.acts, nil
	}
	// Bounded pair look-ahead for fixes that need two coordinated
	// changes (e.g. upgrading both hops of an insecure chain).
	const maxPairs = 300
	tried := 0
	for i := 0; i < len(candidates) && tried < maxPairs; i++ {
		for j := i + 1; j < len(candidates) && tried < maxPairs; j++ {
			tried++
			if err := consider([]Action{candidates[i], candidates[j]}); err != nil {
				return nil, err
			}
		}
	}
	if best != nil {
		return best.acts, nil
	}
	return nil, nil
}

// propose generates candidate actions addressing the observed threats.
func propose(cfg *scadanet.Config, q core.Query, opt Options, threats []core.ThreatVector) []Action {
	secured := q.Property != core.Observability
	var out []Action

	// IEDs implicated by the threat space get alternative-uplink
	// proposals; RTU redundancy is proposed globally below, because a
	// failing RTU also hurts every RTU that routes through it.
	hotIED := map[scadanet.DeviceID]bool{}
	for _, v := range threats {
		for _, id := range v.IEDs {
			hotIED[id] = true
		}
	}

	// Candidate 1: upgrade insecure links (only useful for secured
	// properties, where weak hops exclude measurements).
	if secured {
		for _, l := range cfg.Net.Links() {
			caps := cfg.Net.HopCaps(l, opt.Policy)
			if caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects) {
				continue
			}
			out = append(out, Action{
				Kind:     UpgradeLinkSecurity,
				Link:     l.ID,
				Profiles: strongProfile(),
				Cost:     opt.UpgradeCost,
			})
		}
	}

	// Candidate 2: redundant uplinks. A failing RTU hurts both its own
	// IEDs and every RTU routing through it, so propose a direct secured
	// MTU link for every RTU that lacks one (the scoring pass picks the
	// one that actually shrinks the threat space); additionally, give
	// every hot IED a second uplink to a different RTU.
	mtu := cfg.Net.MTUID()
	rtus := cfg.Net.DevicesOfKind(scadanet.RTU)
	for _, r := range rtus {
		if cfg.Net.LinkBetween(r.ID, mtu) == nil {
			out = append(out, Action{
				Kind: AddRedundantLink, A: r.ID, B: mtu,
				Profiles: backboneProfile(), Cost: opt.AddLinkCost,
			})
		}
	}
	for _, ied := range sortedIDs(hotIED) {
		for _, r := range rtus {
			if cfg.Net.LinkBetween(ied, r.ID) == nil {
				out = append(out, Action{
					Kind: AddRedundantLink, A: ied, B: r.ID,
					Profiles: strongProfile(), Cost: opt.AddLinkCost,
				})
				break // one alternative uplink proposal per IED
			}
		}
	}
	return out
}

func backboneProfile() []secpolicy.Profile {
	return []secpolicy.Profile{
		{Algo: secpolicy.RSA, KeyBits: 2048},
		{Algo: secpolicy.AES, KeyBits: 256},
	}
}

func apply(cfg *scadanet.Config, a Action) error {
	switch a.Kind {
	case UpgradeLinkSecurity:
		for _, l := range cfg.Net.Links() {
			if l.ID == a.Link {
				l.Profiles = append([]secpolicy.Profile(nil), a.Profiles...)
				return nil
			}
		}
		return fmt.Errorf("hardening: link %d not found", a.Link)
	case AddRedundantLink:
		if cfg.Net.LinkBetween(a.A, a.B) != nil {
			return fmt.Errorf("hardening: link %d-%d already exists", a.A, a.B)
		}
		_, err := cfg.Net.AddLink(a.A, a.B, a.Profiles...)
		return err
	}
	return fmt.Errorf("hardening: unknown action kind %d", a.Kind)
}

func sortedIDs(set map[scadanet.DeviceID]bool) []scadanet.DeviceID {
	out := make([]scadanet.DeviceID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
