package sat

// DRAT-style proof logging. When a ProofWriter is installed via
// SetProofHook the solver narrates every change it makes to the clause
// database: original clauses as they are asserted (ProofInput), derived
// clauses as they are learned or produced by pre-/inprocessing
// (ProofAdd), and clauses it stops using (ProofDelete). The resulting
// step sequence is a standard DRAT proof — every ProofAdd is a reverse-
// unit-propagation (RUP) consequence of the clauses alive at that point
// — which internal/sat/drat checks forward, in process, or dumps as
// DIMACS + DRAT text for external checkers.
//
// Emission invariants, relied on by the checker:
//
//   - ProofInput carries the caller's clause after sorting and
//     deduplication but BEFORE root-value filtering, so the logged
//     formula is exactly what was asserted; the solver's internally
//     stored (filtered) clause is propagation-equivalent given the root
//     units the log also contains.
//   - Strengthened clauses (self-subsumption, vivification) are logged
//     as an Add of the shorter clause followed by a Delete of the
//     original, in that order: the Add is RUP while the original is
//     still present.
//   - BVE resolvents are logged before their parent clauses are
//     deleted, for the same reason.
//   - The first transition to root-level unsatisfiability logs an Add
//     of the empty clause (see markRootUnsat); an Unsat verdict under
//     assumptions does NOT (the certificate there is RUP-ness of the
//     negated-assumptions clause — drat.Checker.VerifyUnsat).
//   - Deletes are best-effort bookkeeping so a forward checker can stay
//     bounded-memory; a delete may name a clause the checker knows in a
//     slightly different (unfiltered) form, so checkers treat unmatched
//     deletes leniently. Dropping a delete is always sound — it only
//     leaves the checker more axioms.

// ProofOp classifies one proof step.
type ProofOp uint8

// The proof step kinds: an original (input) clause, a derived clause
// addition, and a clause deletion.
const (
	ProofInput ProofOp = iota
	ProofAdd
	ProofDelete
)

// String implements fmt.Stringer.
func (op ProofOp) String() string {
	switch op {
	case ProofInput:
		return "input"
	case ProofAdd:
		return "add"
	case ProofDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// ProofWriter receives proof steps. Step is called on the solving
// goroutine with a literal slice the solver may reuse or mutate
// afterwards — implementations must copy lits if they retain them, and
// must not call back into the solver. An empty (or nil) lits slice with
// ProofAdd is the empty clause: the formula has been refuted.
type ProofWriter interface {
	Step(op ProofOp, lits []Lit)
}

// SetProofHook installs (or, with nil, removes) the proof writer. Arm
// it before the first AddClause so the logged input formula is
// complete; the disabled cost is a nil-check per database change.
func (s *Solver) SetProofHook(w ProofWriter) { s.proof = w }

// ProofHook returns the installed proof writer (nil when disarmed).
func (s *Solver) ProofHook() ProofWriter { return s.proof }

// proofStep forwards one step to the hook, if armed.
func (s *Solver) proofStep(op ProofOp, lits []Lit) {
	if s.proof != nil {
		s.proof.Step(op, lits)
	}
}

// markRootUnsat records root-level unsatisfiability, logging the empty
// clause on the first transition. Every call site establishes the
// precondition that the empty clause is RUP at that point: unit
// propagation over the clauses already logged yields a conflict.
func (s *Solver) markRootUnsat() {
	if s.rootUnsat {
		return
	}
	s.rootUnsat = true
	if s.proof != nil {
		s.proof.Step(ProofAdd, nil)
	}
}

// proofRecorder buffers proof steps in memory. Portfolio replicas log
// into private recorders; the adopted replica's recording is replayed
// into the parent's writer so the final proof matches the state the
// caller actually observes (see SolvePortfolio).
type proofRecorder struct {
	steps []recordedStep
}

type recordedStep struct {
	op   ProofOp
	lits []Lit
}

// Step implements ProofWriter.
func (r *proofRecorder) Step(op ProofOp, lits []Lit) {
	r.steps = append(r.steps, recordedStep{op: op, lits: append([]Lit(nil), lits...)})
}

// replay forwards every recorded step to w in order.
func (r *proofRecorder) replay(w ProofWriter) {
	for _, st := range r.steps {
		w.Step(st.op, st.lits)
	}
}

// rupImplied reports whether the clause is a reverse-unit-propagation
// consequence of the current database: assuming the negation of every
// literal and propagating yields a conflict (or some literal is already
// true at the root). It must be called at decision level 0, leaves the
// solver back at level 0, and emits no proof steps itself — the
// portfolio uses it to vet shared clauses before logging their import.
func (s *Solver) rupImplied(lits []Lit) bool {
	if s.rootUnsat {
		return true
	}
	for _, l := range lits {
		if s.value(l) == True {
			return true
		}
	}
	s.trailLim = append(s.trailLim, len(s.trail))
	for _, l := range lits {
		if s.value(l) == Unknown {
			s.uncheckedEnqueue(l.Neg(), nil)
		}
	}
	conflict := s.propagate() != nil
	s.cancelUntil(0)
	return conflict
}
