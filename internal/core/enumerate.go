package core

import (
	"encoding/json"
	"fmt"
	"time"

	"scadaver/internal/logic"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// startEnumerateSpan opens the span wrapping a whole threat-space
// enumeration (nil when tracing is disabled). Its end record carries
// the number of distinct vectors found.
func (a *Analyzer) startEnumerateSpan(q Query) *obs.Span {
	if a.trace == nil {
		return nil
	}
	return a.trace.Start("enumerate",
		obs.A("property", q.Property.String()),
		obs.A("budget", budgetLabel(q)))
}

// EnumerateThreats lists distinct minimal threat vectors for the query,
// up to max (0 = no cap beyond termination). After each satisfying
// model, the minimized vector V is blocked with the clause
// ∨_{i∈V} Node_i, so subsequent models must avoid failing all of V
// simultaneously; enumeration therefore yields an antichain of minimal
// vectors and terminates.
func (a *Analyzer) EnumerateThreats(q Query, max int) ([]ThreatVector, error) {
	return a.EnumerateThreatsResumable(q, max, nil)
}

// blockVector adds the blocking clause for one minimal vector and
// reports whether the vector had anything to block — an empty vector
// means the property is violated with zero failures, so enumeration is
// complete.
func blockVector(enc *logic.Encoder, v ThreatVector) bool {
	block := make(map[string]bool, v.Size())
	for _, id := range v.Devices() {
		block[fmt.Sprintf("Node_%d", id)] = false
	}
	for _, id := range v.Links {
		block[fmt.Sprintf("Link_%d", id)] = false
	}
	if len(block) == 0 {
		return false
	}
	enc.Block(block)
	return true
}

// EnumerateThreatsResumable is EnumerateThreats with checkpointing:
// each discovered vector is appended to ck, and vectors recovered from
// a prior interrupted run seed the result set and are re-blocked before
// the search resumes, so completed work is never repeated.
//
// Resuming is sound because minimal vectors form an antichain: blocking
// one minimal vector excludes only its supersets, never a different
// minimal vector, so enumeration to exhaustion reaches the same final
// set regardless of the order — or the number of interruptions — in
// which vectors were found. A nil ck disables checkpointing.
func (a *Analyzer) EnumerateThreatsResumable(q Query, max int, ck *Checkpoint) ([]ThreatVector, error) {
	return a.EnumerateThreatsStream(q, max, ck, nil)
}

// EnumerateThreatsStream is EnumerateThreatsResumable with a per-vector
// emit callback, for callers that stream vectors as they are discovered
// (the verification service's JSONL endpoint) instead of waiting for
// the full set. emit is called once per distinct vector, in discovery
// order, checkpoint-recovered vectors included (a resumed stream replays
// the full set). An emit error — typically a disconnected client —
// aborts the enumeration and is returned with the vectors found so far;
// the checkpoint keeps every discovered vector, so the same enumeration
// resumes where the stream broke. A nil emit disables streaming.
func (a *Analyzer) EnumerateThreatsStream(q Query, max int, ck *Checkpoint, emit func(ThreatVector) error) (out []ThreatVector, err error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	if emit == nil {
		emit = func(ThreatVector) error { return nil }
	}
	span := a.startEnumerateSpan(q)
	defer span.End()
	// The whole enumeration is one registry entry: iterated solves
	// share its progress counters, and checkpoint flushes land in its
	// flight recorder.
	qs := a.beginQuery(q, "enumerate")
	var unsolvedReason string
	defer func() {
		switch {
		case err != nil:
			a.completeQuery(qs, span, "error", err.Error())
		case unsolvedReason != "":
			a.completeQuery(qs, span, "unsolved", unsolvedReason)
		default:
			a.completeQuery(qs, span, "done", "")
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			a.panicQuery(qs, r)
			panic(r)
		}
	}()
	enc, err := a.enumEncoder(q)
	if err != nil {
		return nil, err
	}
	a.armProgress(enc, span)
	defer a.disarmProgress(enc)
	seen := map[string]bool{}
	defer func() { span.Annotate(obs.A("vectors", len(out))) }()

	for _, raw := range ck.Entries() {
		var v ThreatVector
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("checkpoint entry %d: %w", len(out), err)
		}
		if seen[v.key()] {
			continue
		}
		seen[v.key()] = true
		out = append(out, v)
		if err := emit(v); err != nil {
			return out, err
		}
		if !blockVector(enc, v) {
			return out, nil
		}
	}
	span.Annotate(obs.A("resumedVectors", len(out)))

	for max <= 0 || len(out) < max {
		// Each solve is budgeted independently so every enumerated vector
		// gets the full conflict budget (and its own deadline/retries)
		// rather than sharing one budget across the whole enumeration
		// (regression: TestEnumerateBudgetPerSolve).
		sv := a.solveBudgeted(q, enc, span)
		if sv.status != sat.Sat {
			if sv.status == sat.Unsolved {
				span.Annotate(obs.A("unsolved", sv.reason))
				unsolvedReason = sv.reason
			}
			break
		}
		v := a.minimizeVector(q, a.extractVector(q, enc))
		if !seen[v.key()] {
			seen[v.key()] = true
			out = append(out, v)
			if err := ck.Add(v); err != nil {
				// Survivable: the previous on-disk checkpoint stays
				// valid and the entry is retried on the next Add.
				a.metrics.Inc("scadaver_checkpoint_errors_total", nil)
				span.Event("checkpoint-error", obs.A("error", err.Error()))
				qs.Record("checkpoint-error", err.Error(), 0)
			} else if ck != nil {
				qs.Record("checkpoint", fmt.Sprintf("vectors=%d", len(out)), 0)
			}
			if err := emit(v); err != nil {
				return out, err
			}
		}
		if !blockVector(enc, v) {
			// The property is violated with zero failures; nothing else
			// to enumerate.
			break
		}
	}
	return out, nil
}

// CountThreats returns the size of the minimal threat space for the
// query (capped at max when max > 0).
func (a *Analyzer) CountThreats(q Query, max int) (int, error) {
	vs, err := a.EnumerateThreats(q, max)
	if err != nil {
		return 0, err
	}
	return len(vs), nil
}

// MaxResiliency computes the maximum k for which the system is
// k-resilient for the property, scanning k upward from 0. varyIEDs /
// varyRTUs select the failure class: (true,false) answers "how many IED
// failures are tolerable with no RTU failures" (the paper's maximum
// (k,0) form), and vice versa; (true,true) uses the combined budget.
// The scan reuses one structural encoding across all k (see Sweep).
func (a *Analyzer) MaxResiliency(p Property, r int, varyIEDs, varyRTUs bool) (int, error) {
	if !varyIEDs && !varyRTUs {
		return 0, fmt.Errorf("%w: nothing to vary", ErrBadQuery)
	}
	limit := 0
	if varyIEDs {
		limit += len(a.fieldIEDs)
	}
	if varyRTUs {
		limit += len(a.fieldRTUs)
	}
	sw, err := a.NewSweep(p, r, 0)
	if err != nil {
		return 0, err
	}
	maxK := -1
	for k := 0; k <= limit; k++ {
		var res *Result
		var err error
		switch {
		case varyIEDs && varyRTUs:
			res, err = sw.VerifyK(k)
		case varyIEDs:
			res, err = sw.VerifySplit(k, 0)
		default:
			res, err = sw.VerifySplit(0, k)
		}
		if err != nil {
			return 0, err
		}
		if res.Status != sat.Unsat {
			break
		}
		maxK = k
	}
	return maxK, nil
}

// MaxResiliencyCombined computes the maximum combined budget k for
// which the system is k-resilient for the property (resiliency is
// monotone: enlarging the failure budget only adds candidate threat
// models).
//
// With an encoding cache armed, each probe solves on a pristine clone
// of the shared structural snapshot via Verify, and the search gallops
// up from k = 0 (doubling, then binary refinement inside the bracketed
// octave). Real boundaries sit at small k, so galloping probes only
// small budgets — a plain binary search over [0, #devices] opens with
// the most expensive cardinality encodings the instance can ask for.
// Probing on clones also keeps per-probe cost flat: an incremental
// sweep accumulates every probed budget's (selector-guarded) cardinality
// clauses in one solver, and on IEEE-57-sized instances the watch lists
// grow until each probe propagates several times slower than the same
// query on a fresh clone.
//
// Without a cache the probes fall back to one incremental Sweep, whose
// shared encoding is then built once instead of once per probe.
func (a *Analyzer) MaxResiliencyCombined(p Property, r int) (int, error) {
	limit := len(a.fieldIEDs) + len(a.fieldRTUs)
	if a.cache != nil {
		resilient := func(k int) (bool, error) {
			res, err := a.Verify(Query{Property: p, Combined: true, K: k, R: r})
			if err != nil {
				return false, err
			}
			return res.Status == sat.Unsat, nil
		}
		// Gallop: step k by one through the small budgets (real resiliency
		// boundaries sit at k <= 3, where unit steps bracket the boundary
		// with zero overshoot), then double until the property breaks
		// (first sat probe).
		lo := -1 // largest k known resilient (-1: none yet)
		hi := limit
		for k := 0; k <= limit; {
			ok, err := resilient(k)
			if err != nil {
				return 0, err
			}
			if !ok {
				hi = k - 1
				break
			}
			lo = k
			if k == limit {
				return limit, nil
			}
			if k < 4 {
				k++
			} else {
				k = min(2*k, limit)
			}
		}
		// Refine: largest unsat k inside (lo, hi].
		for lo < hi {
			mid := (lo + hi + 1) / 2
			ok, err := resilient(mid)
			if err != nil {
				return 0, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo, nil
	}
	sw, err := a.NewSweep(p, r, 0)
	if err != nil {
		return 0, err
	}
	lo, hi := -1, limit
	// Invariant: resilient at lo (or lo == -1), violated at hi+1
	// conceptually; search the largest unsat k.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		res, err := sw.VerifyK(mid)
		if err != nil {
			return 0, err
		}
		if res.Status == sat.Unsat {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MinimalThreat returns a smallest-cardinality failure set violating
// the property (and its size), found by verifying just past the
// binary-searched resiliency boundary. A nil vector with size 0 means
// even failing every field device keeps the property (it can never be
// violated by device failures alone).
func (a *Analyzer) MinimalThreat(p Property, r int) (*ThreatVector, int, error) {
	kStar, err := a.MaxResiliencyCombined(p, r)
	if err != nil {
		return nil, 0, err
	}
	limit := len(a.fieldIEDs) + len(a.fieldRTUs)
	if kStar >= limit {
		return nil, 0, nil
	}
	res, err := a.Verify(Query{Property: p, Combined: true, K: kStar + 1, R: r})
	if err != nil {
		return nil, 0, err
	}
	if res.Status != sat.Sat {
		// Unreachable given the boundary search, kept for robustness.
		return nil, 0, nil
	}
	return res.Vector, res.Vector.Size(), nil
}

// Report is a complete verification report for one configuration,
// produced by Analyze: the primary query result plus the enumerated
// threat space.
type Report struct {
	Result   *Result
	Threats  []ThreatVector
	Elapsed  time.Duration
	Analyzer *Analyzer
}

// Analyze verifies the configuration's own resiliency specification
// (Config.K1/K2/R) for the given property and enumerates up to
// maxThreats threat vectors when the specification is violated.
func (a *Analyzer) Analyze(p Property, maxThreats int) (*Report, error) {
	start := time.Now()
	q := Query{Property: p, K1: a.cfg.K1, K2: a.cfg.K2, R: a.cfg.R}
	res, err := a.Verify(q)
	if err != nil {
		return nil, err
	}
	rep := &Report{Result: res, Analyzer: a}
	if res.Status == sat.Sat && maxThreats != 0 {
		rep.Threats, err = a.EnumerateThreats(q, maxThreats)
		if err != nil {
			return nil, err
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// VerifyWithFailures is a convenience query that fixes a concrete set of
// failed devices and reports whether the property holds under exactly
// those failures (direct evaluation; no search).
func (a *Analyzer) VerifyWithFailures(p Property, r int, failed []scadanet.DeviceID) bool {
	down := make(map[scadanet.DeviceID]bool, len(failed))
	for _, id := range failed {
		down[id] = true
	}
	switch p {
	case Observability:
		return a.EvalObservability(down, false)
	case SecuredObservability:
		return a.EvalObservability(down, true)
	case BadDataDetectability:
		return a.EvalBadDataDetectability(down, r)
	}
	return false
}
