package sat

import (
	"testing"
)

// php adds the pigeonhole principle PHP(pigeons, holes) to s: every
// pigeon sits in some hole, no two pigeons share a hole. Unsatisfiable
// (and hard for CDCL) whenever pigeons > holes.
func php(t *testing.T, s *Solver, pigeons, holes int) {
	t.Helper()
	vars := make([][]Var, pigeons)
	for i := range vars {
		vars[i] = newVars(s, holes)
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = PosLit(vars[i][j])
		}
		mustAdd(t, s, lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				mustAdd(t, s, NegLit(vars[i][j]), NegLit(vars[k][j]))
			}
		}
	}
}

func TestStatsSolvesAndSolveTime(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	mustAdd(t, s, PosLit(vs[0]), PosLit(vs[1]))
	mustAdd(t, s, NegLit(vs[1]), PosLit(vs[2]))
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	if s.Solve(NegLit(vs[0])) != Sat {
		t.Fatal("want sat under assumption")
	}
	st := s.Stats()
	if st.Solves != 2 {
		t.Fatalf("Solves = %d, want 2", st.Solves)
	}
	if st.SolveTime < 0 {
		t.Fatalf("SolveTime = %v", st.SolveTime)
	}
}

func TestStatsSub(t *testing.T) {
	s := New()
	php(t, s, 4, 3)
	if s.Solve() != Unsat {
		t.Fatal("want unsat")
	}
	mid := s.Stats()
	if mid.Conflicts == 0 {
		t.Fatal("PHP(4,3) should conflict at least once")
	}
	// A solver that is already root-unsat answers again without search.
	if s.Solve() != Unsat {
		t.Fatal("want unsat again")
	}
	delta := s.Stats().Sub(mid)
	if delta.Conflicts != 0 || delta.Decisions != 0 {
		t.Fatalf("re-answering an unsat root did extra work: %+v", delta)
	}
	if delta.Solves != 1 {
		t.Fatalf("Solves delta = %d, want 1", delta.Solves)
	}
	if delta.MaxVars != mid.MaxVars {
		t.Fatalf("Sub must keep absolute MaxVars, got %d want %d", delta.MaxVars, mid.MaxVars)
	}
}

func TestSetInterrupt(t *testing.T) {
	s := New()
	php(t, s, 8, 7)
	polls := 0
	s.SetInterrupt(func() bool {
		polls++
		return true
	})
	if got := s.Solve(); got != Unsolved {
		t.Fatalf("interrupted solve = %v, want unsolved", got)
	}
	if polls == 0 {
		t.Fatal("interrupt hook was never polled")
	}
	// The solver must stay usable: clear the hook and finish the proof.
	s.SetInterrupt(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after interrupt: %v, want unsat", got)
	}
}

func TestConflictBudgetIsPerSolve(t *testing.T) {
	s := New()
	php(t, s, 7, 6)
	s.SetConflictBudget(50)
	first := s.Solve()
	if first != Unsolved {
		t.Fatalf("tiny budget should exhaust on PHP(7,6), got %v", first)
	}
	// Each Solve call gets the full budget again: repeated bounded calls
	// make progress via learned clauses instead of dying immediately.
	before := s.Stats().Conflicts
	if s.Solve() == Sat {
		t.Fatal("PHP must never be sat")
	}
	spent := s.Stats().Conflicts - before
	if spent == 0 {
		t.Fatal("second bounded solve did no work: budget was consumed across calls")
	}
}
