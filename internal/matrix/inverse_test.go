package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInverseIdentity(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.At(0, 0) != 1 || inv.At(1, 1) != 1 || inv.At(0, 1) != 0 {
		t.Fatalf("inverse of identity = %v", inv)
	}
}

func TestInverseKnown(t *testing.T) {
	m, _ := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(inv.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("inv[%d][%d] = %v, want %v", i, j, inv.At(i, j), want[i][j])
			}
		}
	}
}

func TestInverseErrors(t *testing.T) {
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Fatal("non-square inverse must fail")
	}
	singular, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := singular.Inverse(); err == nil {
		t.Fatal("singular inverse must fail")
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	// Property: for random well-conditioned A, A·A⁻¹ ≈ I.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%5
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)+1) // diagonal dominance
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		prod, err := a.Mul(inv)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
