package scadaver_test

import (
	"bytes"
	"strings"
	"testing"

	"scadaver"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg, err := scadaver.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	analyzer, err := scadaver.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyzer.Verify(scadaver.Query{Property: scadaver.Observability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatalf("case study must be (1,1)-resilient observable: %v", res)
	}
	res, err = analyzer.Verify(scadaver.Query{Property: scadaver.SecuredObservability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilient() {
		t.Fatal("case study must violate secured (1,1)")
	}
}

func TestFacadeConfigRoundTrip(t *testing.T) {
	cfg, err := scadaver.CaseStudyConfig(true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scadaver.WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := scadaver.ParseConfig(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Msrs.Len() != cfg.Msrs.Len() {
		t.Fatal("round trip changed the measurement model")
	}
}

func TestFacadeParseConfigFile(t *testing.T) {
	cfg, err := scadaver.ParseConfigFile("testdata/case5bus.scada")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Msrs.NStates != 5 {
		t.Fatalf("states = %d", cfg.Msrs.NStates)
	}
	if _, err := scadaver.ParseConfigFile("testdata/never-exists.scada"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestFacadeSynthAndPolicy(t *testing.T) {
	sys, err := scadaver.BusSystemByName("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	if ms := scadaver.FullMeasurementSet(sys); ms.Len() != 54 {
		t.Fatalf("measurement set = %d", ms.Len())
	}
	cfg, err := scadaver.GenerateSCADA(scadaver.SynthParams{Bus: sys, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	analyzer, err := scadaver.NewAnalyzer(cfg, scadaver.WithPolicy(scadaver.DefaultPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analyzer.Verify(scadaver.Query{Property: scadaver.Observability, Combined: true, K: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHarden(t *testing.T) {
	cfg, err := scadaver.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	q := scadaver.Query{Property: scadaver.SecuredObservability, K1: 1, K2: 1}
	plan, err := scadaver.Harden(cfg, q, scadaver.HardeningOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Achieved {
		t.Fatalf("plan: %v", plan)
	}
	hardened, err := scadaver.NewAnalyzer(plan.Config)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hardened.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resilient() {
		t.Fatal("hardened config does not verify")
	}
}

func TestFacadeBuildNetwork(t *testing.T) {
	net := scadaver.NewNetwork()
	if _, err := net.AddDevice(scadaver.Device{ID: 1, Kind: scadaver.IED}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddDevice(scadaver.Device{ID: 2, Kind: scadaver.MTU}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeObservability(t *testing.T) {
	cfg, err := scadaver.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := scadaver.NewTracer(&buf)
	root := tracer.Start("facade", scadaver.TraceA("suite", "test"))
	reg := scadaver.NewMetricsRegistry()
	analyzer, err := scadaver.NewAnalyzer(cfg,
		scadaver.WithTrace(root),
		scadaver.WithMetrics(reg),
		scadaver.WithProgressEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := analyzer.Verify(scadaver.Query{Property: scadaver.SecuredObservability, K1: 1, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Solve <= 0 || res.Phases.Sum() > res.Duration {
		t.Fatalf("phase breakdown inconsistent: %v vs %v", res.Phases, res.Duration)
	}
	root.End()
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"solve"`) {
		t.Fatal("trace missing solve span")
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "scadaver_queries_total") {
		t.Fatalf("metrics export missing query counter:\n%s", prom.String())
	}
}
