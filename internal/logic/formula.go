// Package logic provides the propositional modeling layer the SCADA
// verifier encodes its constraints in: a typed formula AST with Boolean
// connectives and cardinality atoms, a Tseitin transformation onto
// package sat, and sequential-counter encodings for the paper's counting
// constraints (failure budgets, unique-measurement counts, per-state
// measurement multiplicities).
//
// This plays the role of the paper's "SMT logics" (Boolean and integer
// terms): all integer terms in the model are cardinalities of Boolean
// term sets, which AtMost/AtLeast capture exactly.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

type kind int

const (
	kindConst kind = iota + 1
	kindVar
	kindNot
	kindAnd
	kindOr
	kindAtMost
	kindAtLeast
)

// Formula is an immutable propositional formula. Construct with the
// package-level constructors (V, Not, And, Or, Implies, Iff, True,
// False, AtMost, AtLeast, Exactly). Formulas form a DAG: shared
// subformulas are encoded once.
type Formula struct {
	kind kind
	b    bool   // kindConst
	name string // kindVar
	kids []*Formula
	k    int // cardinality bound
}

var (
	trueFormula  = &Formula{kind: kindConst, b: true}
	falseFormula = &Formula{kind: kindConst, b: false}
)

// True is the constant true formula.
func True() *Formula { return trueFormula }

// False is the constant false formula.
func False() *Formula { return falseFormula }

// Const returns the constant formula with value b.
func Const(b bool) *Formula {
	if b {
		return trueFormula
	}
	return falseFormula
}

// V returns the propositional variable with the given name. Two V calls
// with the same name denote the same variable.
func V(name string) *Formula { return &Formula{kind: kindVar, name: name} }

// Vf returns a variable whose name is built printf-style, convenient for
// indexed families like Node_i or D_Z.
func Vf(format string, args ...any) *Formula {
	return V(fmt.Sprintf(format, args...))
}

// Not returns the negation of f, folding constants and double negation.
func Not(f *Formula) *Formula {
	switch f.kind {
	case kindConst:
		return Const(!f.b)
	case kindNot:
		return f.kids[0]
	}
	return &Formula{kind: kindNot, kids: []*Formula{f}}
}

// And returns the conjunction of fs, folding constants. And() is True.
func And(fs ...*Formula) *Formula {
	kids := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		if f.kind == kindConst {
			if !f.b {
				return falseFormula
			}
			continue
		}
		kids = append(kids, f)
	}
	switch len(kids) {
	case 0:
		return trueFormula
	case 1:
		return kids[0]
	}
	return &Formula{kind: kindAnd, kids: kids}
}

// Or returns the disjunction of fs, folding constants. Or() is False.
func Or(fs ...*Formula) *Formula {
	kids := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		if f.kind == kindConst {
			if f.b {
				return trueFormula
			}
			continue
		}
		kids = append(kids, f)
	}
	switch len(kids) {
	case 0:
		return falseFormula
	case 1:
		return kids[0]
	}
	return &Formula{kind: kindOr, kids: kids}
}

// Implies returns a -> b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// Iff returns a <-> b.
func Iff(a, b *Formula) *Formula {
	return And(Or(Not(a), b), Or(Not(b), a))
}

// AtMost returns the cardinality atom "at most k of fs are true".
func AtMost(k int, fs ...*Formula) *Formula {
	if k < 0 {
		return falseFormula
	}
	if k >= len(fs) {
		return trueFormula
	}
	return &Formula{kind: kindAtMost, k: k, kids: append([]*Formula(nil), fs...)}
}

// AtLeast returns the cardinality atom "at least k of fs are true".
func AtLeast(k int, fs ...*Formula) *Formula {
	if k <= 0 {
		return trueFormula
	}
	if k > len(fs) {
		return falseFormula
	}
	return &Formula{kind: kindAtLeast, k: k, kids: append([]*Formula(nil), fs...)}
}

// Exactly returns the cardinality constraint "exactly k of fs are true".
func Exactly(k int, fs ...*Formula) *Formula {
	return And(AtMost(k, fs...), AtLeast(k, fs...))
}

// Vars returns the sorted set of variable names occurring in f.
func (f *Formula) Vars() []string {
	seen := map[string]bool{}
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g.kind == kindVar {
			seen[g.name] = true
		}
		for _, k := range g.kids {
			walk(k)
		}
	}
	walk(f)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates f under the given assignment; variables absent from the
// assignment evaluate to false.
func (f *Formula) Eval(assignment map[string]bool) bool {
	switch f.kind {
	case kindConst:
		return f.b
	case kindVar:
		return assignment[f.name]
	case kindNot:
		return !f.kids[0].Eval(assignment)
	case kindAnd:
		for _, k := range f.kids {
			if !k.Eval(assignment) {
				return false
			}
		}
		return true
	case kindOr:
		for _, k := range f.kids {
			if k.Eval(assignment) {
				return true
			}
		}
		return false
	case kindAtMost, kindAtLeast:
		n := 0
		for _, k := range f.kids {
			if k.Eval(assignment) {
				n++
			}
		}
		if f.kind == kindAtMost {
			return n <= f.k
		}
		return n >= f.k
	}
	return false
}

// String renders the formula in a Lisp-like prefix form.
func (f *Formula) String() string {
	var sb strings.Builder
	f.write(&sb)
	return sb.String()
}

func (f *Formula) write(sb *strings.Builder) {
	switch f.kind {
	case kindConst:
		if f.b {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case kindVar:
		sb.WriteString(f.name)
	case kindNot:
		sb.WriteString("(not ")
		f.kids[0].write(sb)
		sb.WriteByte(')')
	case kindAnd, kindOr, kindAtMost, kindAtLeast:
		switch f.kind {
		case kindAnd:
			sb.WriteString("(and")
		case kindOr:
			sb.WriteString("(or")
		case kindAtMost:
			fmt.Fprintf(sb, "(atmost %d", f.k)
		case kindAtLeast:
			fmt.Fprintf(sb, "(atleast %d", f.k)
		}
		for _, k := range f.kids {
			sb.WriteByte(' ')
			k.write(sb)
		}
		sb.WriteByte(')')
	}
}
