package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightNilRegistryIsNoOp(t *testing.T) {
	var r *QueryRegistry
	qs := r.Begin("fp", "observability", "k=2", 100, time.Second)
	if qs != nil {
		t.Fatalf("nil registry Begin = %v, want nil", qs)
	}
	// Every method on the nil state must be callable.
	qs.SetPhase("solve")
	qs.SetAttempt(2)
	qs.Progress(1, 2, 3, 4, 5, 6)
	qs.Record("restart", "", 1)
	qs.SetReplicas([]ReplicaSnapshot{{ID: 0}})
	qs.Complete("sat", "")
	if got := qs.Snapshot(); got.ID != 0 {
		t.Fatalf("nil state Snapshot = %+v, want zero", got)
	}
	if qs.FlightSummary() != "" || qs.ID() != 0 {
		t.Fatal("nil state summary/id not zero")
	}
	if got := r.Active(); len(got) != 0 {
		t.Fatalf("nil registry Active = %v", got)
	}
	if got := r.Completed(); len(got) != 0 {
		t.Fatalf("nil registry Completed = %v", got)
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("nil registry Get found something")
	}
	r.SetSlowQueryLog(time.Second, nil)
	if r.SlowThreshold() != 0 {
		t.Fatal("nil registry SlowThreshold != 0")
	}
	stop := WatchProgress(nil, r, time.Second)
	stop()
}

func TestFlightQueryLifecycle(t *testing.T) {
	r := NewQueryRegistry(4, 8)
	qs := r.Begin("fp123", "observability", "k=2", 5000, 2*time.Second)
	if qs.ID() == 0 {
		t.Fatal("query id not assigned")
	}
	qs.SetPhase("solve")
	qs.SetAttempt(1)
	qs.Progress(1024, 2048, 65536, 7, 1, 300)
	qs.Record("restart", "learnt=300", 1024)

	active := r.Active()
	if len(active) != 1 {
		t.Fatalf("Active = %d entries, want 1", len(active))
	}
	got := active[0]
	if got.Property != "observability" || got.Budget != "k=2" || got.Fingerprint != "fp123" {
		t.Fatalf("identity fields wrong: %+v", got)
	}
	if got.Phase != "solve" || got.Conflicts != 1024 || got.Restarts != 7 || got.LearntDB != 300 {
		t.Fatalf("progress fields wrong: %+v", got)
	}
	if got.ConflictBudget != 5000 || got.DeadlineNanos != int64(2*time.Second) {
		t.Fatalf("budget fields wrong: %+v", got)
	}
	if got.Done {
		t.Fatal("active query reported done")
	}
	if got.ConflictsPerS <= 0 {
		t.Fatalf("rate = %v, want > 0", got.ConflictsPerS)
	}

	snap := qs.Complete("unsat", "")
	if !snap.Done || snap.Status != "unsat" {
		t.Fatalf("completed snapshot: %+v", snap)
	}
	if len(r.Active()) != 0 {
		t.Fatal("completed query still active")
	}
	comp := r.Completed()
	if len(comp) != 1 || comp[0].ID != qs.ID() {
		t.Fatalf("Completed = %+v", comp)
	}
	// Get finds it in the completed ring, and the elapsed time froze.
	g1, ok := r.Get(qs.ID())
	if !ok || !g1.Done {
		t.Fatalf("Get(%d) = %+v, %v", qs.ID(), g1, ok)
	}
	g2, _ := r.Get(qs.ID())
	if g1.ElapsedNanos != g2.ElapsedNanos {
		t.Fatal("elapsed time of a completed query still advancing")
	}
	// Double-complete is a no-op.
	if again := qs.Complete("sat", ""); again.ID != 0 {
		t.Fatalf("second Complete = %+v, want zero", again)
	}
	if len(r.Completed()) != 1 {
		t.Fatal("double completion duplicated the ring entry")
	}
}

func TestFlightCompletedRingBounded(t *testing.T) {
	r := NewQueryRegistry(3, 4)
	var ids []uint64
	for i := 0; i < 10; i++ {
		qs := r.Begin("", "observability", "k=1", 0, 0)
		ids = append(ids, qs.ID())
		qs.Complete("unsat", "")
	}
	comp := r.Completed()
	if len(comp) != 3 {
		t.Fatalf("Completed = %d entries, want 3", len(comp))
	}
	// Newest first: the last three begun queries, in reverse order.
	for i, want := range []uint64{ids[9], ids[8], ids[7]} {
		if comp[i].ID != want {
			t.Fatalf("Completed[%d].ID = %d, want %d", i, comp[i].ID, want)
		}
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("evicted query still retrievable")
	}
}

func TestFlightEventRingBounded(t *testing.T) {
	r := NewQueryRegistry(2, 4)
	qs := r.Begin("", "secured", "k=1", 0, 0)
	for i := 0; i < 10; i++ {
		qs.Record("restart", "", uint64(i))
	}
	snap := qs.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("events = %d, want ring cap 4", len(snap.Events))
	}
	if snap.EventsDropped != 6 {
		t.Fatalf("eventsDropped = %d, want 6", snap.EventsDropped)
	}
	// Oldest → newest, holding the last four records.
	for i, ev := range snap.Events {
		if want := uint64(6 + i); ev.Conflicts != want {
			t.Fatalf("events[%d].Conflicts = %d, want %d", i, ev.Conflicts, want)
		}
	}
	sum := qs.FlightSummary()
	if !strings.Contains(sum, "+6 earlier") || !strings.Contains(sum, "restart@9") {
		t.Fatalf("FlightSummary = %q", sum)
	}
}

func TestFlightSlowQueryLog(t *testing.T) {
	r := NewQueryRegistry(2, 4)
	var slow []QuerySnapshot
	r.SetSlowQueryLog(time.Nanosecond, func(s QuerySnapshot) { slow = append(slow, s) })

	qs := r.Begin("", "observability", "k=2", 0, 0)
	time.Sleep(time.Millisecond)
	qs.Complete("sat", "")
	if len(slow) != 1 || slow[0].ID != qs.ID() {
		t.Fatalf("slow log = %+v, want the completed query", slow)
	}

	r.SetSlowQueryLog(time.Hour, func(s QuerySnapshot) { slow = append(slow, s) })
	r.Begin("", "observability", "k=2", 0, 0).Complete("sat", "")
	if len(slow) != 1 {
		t.Fatal("fast query hit the slow log")
	}
}

func TestFlightSnapshotJSONShape(t *testing.T) {
	r := NewQueryRegistry(2, 4)
	qs := r.Begin("fp", "baddata", "k=1,r=2", 10, time.Second)
	qs.Progress(5, 6, 7, 1, 0, 9)
	qs.Record("retry", "deadline exceeded", 5)
	qs.SetReplicas([]ReplicaSnapshot{{ID: 0, Strategy: "baseline", Winner: true}})
	b, err := json.Marshal(qs.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"property":"baddata"`, `"budget":"k=1,r=2"`, `"conflicts":5`,
		`"events":[{"tNanos":`, `"kind":"retry"`, `"strategy":"baseline"`,
		`"winner":true`, `"done":false`,
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("snapshot JSON missing %s:\n%s", want, b)
		}
	}
}

// TestFlightConcurrent hammers one registry from writer and reader
// goroutines; the race detector is the real assertion, the history
// bound the functional one.
func TestFlightConcurrent(t *testing.T) {
	r := NewQueryRegistry(4, 8)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				qs := r.Begin("", "observability", "k=2", 0, 0)
				for j := 0; j < 20; j++ {
					qs.Progress(uint64(j), 0, 0, 0, 0, j)
					qs.Record("restart", "", uint64(j))
				}
				qs.Complete("unsat", "")
			}
		}()
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Active()
				r.Completed()
				r.Get(1)
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := len(r.Completed()); got != 4 {
		t.Fatalf("completed ring = %d entries, want history bound 4", got)
	}
}
