package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"scadaver/internal/faultinject"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
)

func TestCampaignFingerprint(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	queries := campaignQueries(2)

	fp1, err := CampaignFingerprint(cfg, CheckpointKindCampaign, queries)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := CampaignFingerprint(cfg, CheckpointKindCampaign, queries)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable: %s != %s", fp1, fp2)
	}

	otherQueries, err := CampaignFingerprint(cfg, CheckpointKindCampaign, campaignQueries(3))
	if err != nil {
		t.Fatal(err)
	}
	if otherQueries == fp1 {
		t.Fatal("different query lists share a fingerprint")
	}
	otherKind, err := CampaignFingerprint(cfg, CheckpointKindEnumerate, queries)
	if err != nil {
		t.Fatal(err)
	}
	if otherKind == fp1 {
		t.Fatal("different kinds share a fingerprint")
	}
	otherCfg, err := CampaignFingerprint(synthConfig(t, powergrid.IEEE14(), 99, 2), CheckpointKindCampaign, queries)
	if err != nil {
		t.Fatal(err)
	}
	if otherCfg == fp1 {
		t.Fatal("different configurations share a fingerprint")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Entries()) != 0 {
		t.Fatalf("fresh checkpoint has %d entries", len(ck.Entries()))
	}
	vectors := []ThreatVector{
		{IEDs: []scadanet.DeviceID{1, 2}},
		{RTUs: []scadanet.DeviceID{7}},
	}
	for _, v := range vectors {
		if err := ck.Add(v); err != nil {
			t.Fatal(err)
		}
	}

	ck2, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	got := ck2.Entries()
	if len(got) != len(vectors) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(vectors))
	}
	for i, raw := range got {
		var v ThreatVector
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if v.key() != vectors[i].key() {
			t.Fatalf("entry %d = %v, want %v", i, v, vectors[i])
		}
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindCampaign, "fp-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Add(campaignEntry{Index: 0, Result: &Result{}}); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCheckpoint(path, CheckpointKindCampaign, "fp-b"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("fingerprint mismatch: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-a"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("kind mismatch: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointTransientWriteFault pins the fault-tolerance grace of
// the writer: an injected transient I/O failure makes Add report the
// error but leaves the previous on-disk checkpoint intact, and the next
// Add rewrites the file with everything, including the entry whose
// flush failed.
func TestCheckpointTransientWriteFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Add(ThreatVector{IEDs: []scadanet.DeviceID{1}}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Fail the second flush at its first write (the header; the flush
	// aborts there, consuming one global write index), then let the
	// third flush through.
	ck.UseFaults(faultinject.New(7).FailWrites(0))
	if err := ck.Add(ThreatVector{IEDs: []scadanet.DeviceID{2}}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Add under injected fault: err = %v, want ErrInjected", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Fatal("failed flush corrupted the on-disk checkpoint")
	}

	if err := ck.Add(ThreatVector{IEDs: []scadanet.DeviceID{3}}); err != nil {
		t.Fatalf("Add after transient fault: %v", err)
	}
	ck2, err := OpenCheckpoint(path, CheckpointKindEnumerate, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ck2.Entries()) != 3 {
		t.Fatalf("recovered %d entries, want 3 (failed entry must be retried by the next flush)", len(ck2.Entries()))
	}
}

func TestSweepVerifyRangeResume(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 41, 2)
	const maxK = 3

	a1, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw1, err := a1.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sw1.VerifyRange(maxK, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seed a checkpoint with k=0 and k=2 decided, marked so a re-run
	// would be detectable.
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, CheckpointKindCampaign, "fp-sweep")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 2} {
		marked := *want[k]
		marked.Attempts = 99
		if err := ck.Add(campaignEntry{Index: k, Result: &marked}); err != nil {
			t.Fatal(err)
		}
	}

	a2, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := a2.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(path, CheckpointKindCampaign, "fp-sweep")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sw2.VerifyRange(maxK, ck2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= maxK; k++ {
		if got[k] == nil {
			t.Fatalf("k=%d: missing result", k)
		}
		if got[k].Status != want[k].Status {
			t.Fatalf("k=%d: resumed status %v != uninterrupted %v", k, got[k].Status, want[k].Status)
		}
	}
	if got[0].Attempts != 99 || got[2].Attempts != 99 {
		t.Fatal("checkpointed budgets were re-verified instead of skipped")
	}

	// The finished checkpoint covers the whole range.
	ck3, err := OpenCheckpoint(path, CheckpointKindCampaign, "fp-sweep")
	if err != nil {
		t.Fatal(err)
	}
	if len(ck3.Entries()) != maxK+1 {
		t.Fatalf("final checkpoint has %d entries, want %d", len(ck3.Entries()), maxK+1)
	}
}
