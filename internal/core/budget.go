package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"scadaver/internal/logic"
	"scadaver/internal/obs"
	"scadaver/internal/sat"
)

// DefaultEscalation is the factor by which per-attempt deadlines and
// conflict budgets grow between retries when QueryBudget.Escalate is
// unset. Doubling keeps the total work of n attempts within 2× the
// final attempt, so retrying is never asymptotically worse than having
// started with the large budget.
const DefaultEscalation = 2.0

// QueryBudget bounds how much work a single verification query may
// consume before it is declared Unsolved instead of holding a campaign
// hostage. The zero value imposes no bounds.
//
// Deadline and Conflicts are per-attempt limits; Retries grants that
// many additional attempts after the first, each with its budgets
// scaled by Escalate (default DefaultEscalation), so a query that was
// merely unlucky gets progressively more room while a genuinely
// intractable one still terminates. A query that exhausts every attempt
// degrades gracefully: the campaign records Status Unsolved with
// Result.Attempts and Result.FailureReason instead of erroring.
type QueryBudget struct {
	// Deadline bounds the wall-clock time of one solve attempt
	// (0 = no deadline). Enforced through the solver's cooperative
	// interrupt, so an expired attempt unwinds within a few hundred
	// search steps.
	Deadline time.Duration `json:"deadlineNanos,omitempty"`
	// Conflicts bounds the SAT conflicts of one solve attempt
	// (0 = unlimited; falls back to WithConflictBudget when set).
	Conflicts uint64 `json:"conflicts,omitempty"`
	// Retries is the number of additional attempts after the first.
	Retries int `json:"retries,omitempty"`
	// Escalate multiplies Deadline and Conflicts between attempts
	// (values <= 1 select DefaultEscalation).
	Escalate float64 `json:"escalate,omitempty"`
}

// Enabled reports whether the budget bounds anything.
func (b QueryBudget) Enabled() bool {
	return b.Deadline > 0 || b.Conflicts > 0 || b.Retries > 0
}

// ErrBadBudget reports a nonsensical query budget (negative deadline,
// negative retry count, negative escalation factor). Budgets are
// validated when an Analyzer is built, so a bad budget fails loudly at
// construction instead of silently producing a solver that never
// expires or retries forever.
var ErrBadBudget = errors.New("core: invalid query budget")

// Validate checks the budget for nonsensical values. The zero value is
// valid (no bounds); Escalate may be 0 (select DefaultEscalation) or
// any positive factor, but a negative factor — like a negative deadline
// or retry count — is an error wrapping ErrBadBudget.
func (b QueryBudget) Validate() error {
	if b.Deadline < 0 {
		return fmt.Errorf("%w: negative deadline %v", ErrBadBudget, b.Deadline)
	}
	if b.Retries < 0 {
		return fmt.Errorf("%w: negative retries %d", ErrBadBudget, b.Retries)
	}
	if b.Escalate < 0 {
		return fmt.Errorf("%w: negative escalation factor %g", ErrBadBudget, b.Escalate)
	}
	return nil
}

// Clamp derives a request-scoped budget from b bounded by cap: fields
// that cap bounds never exceed cap's value, and fields b leaves unset
// (zero) inherit cap's bound, so a caller-supplied budget can tighten —
// but never loosen — a server-enforced ceiling. A zero field of cap
// imposes no bound. Retries only ever clamp down: an unset retry count
// means "no retries" and does not inherit cap's count, since extra
// attempts are extra work, not a bound. Escalation is taken from b when
// set, else from cap.
func (b QueryBudget) Clamp(cap QueryBudget) QueryBudget {
	out := b
	if cap.Deadline > 0 && (out.Deadline <= 0 || out.Deadline > cap.Deadline) {
		out.Deadline = cap.Deadline
	}
	if cap.Conflicts > 0 && (out.Conflicts == 0 || out.Conflicts > cap.Conflicts) {
		out.Conflicts = cap.Conflicts
	}
	if cap.Retries > 0 && out.Retries > cap.Retries {
		out.Retries = cap.Retries
	}
	if out.Escalate <= 0 {
		out.Escalate = cap.Escalate
	}
	return out
}

// WithBudget attaches a per-query budget (deadline, conflict cap,
// retries with escalation) to every verification of this analyzer.
// Budget exhaustion degrades to Status Unsolved with a recorded
// attempt count and failure reason; it is never an error. The budget is
// validated by NewAnalyzer: nonsensical values (see Validate) fail
// construction with an error wrapping ErrBadBudget.
func WithBudget(b QueryBudget) Option {
	return func(a *Analyzer) { a.budget = b }
}

// Failure reasons recorded on Result.FailureReason (and as the reason
// label of scadaver_queries_unsolved_total) when a query degrades to
// Unsolved.
const (
	// ReasonInterrupted: the campaign's context was cancelled; the
	// query was abandoned, not exhausted.
	ReasonInterrupted = "interrupted"
	// ReasonDeadline: every attempt hit its wall-clock deadline.
	ReasonDeadline = "deadline exceeded"
	// ReasonConflicts: every attempt exhausted its conflict budget.
	ReasonConflicts = "conflict budget exhausted"
	// ReasonInjectedStall: a fault-injection plan stalled the solver
	// (chaos testing only).
	ReasonInjectedStall = "injected solver stall"
)

// solveOutcome is the result of one budgeted solve: the final status,
// how many attempts it took, and — when Unsolved — why the query was
// given up on.
type solveOutcome struct {
	status   sat.Status
	attempts int
	reason   string
}

// solveBudgeted runs one solve of q's encoding under the analyzer's
// query budget: each attempt is armed with the per-attempt deadline and
// conflict budget (escalating between attempts), the caller's interrupt
// hook, and any fault-injection hooks, and an Unsolved attempt is
// retried until the attempts are spent. External cancellation is never
// retried — the campaign is shutting down, and the caller (Runner)
// drops interrupted queries.
//
// The solver's budget/interrupt/hook state is reset afterwards so a
// shared solver (Sweep, enumeration) never leaks one query's deadline
// into the next.
func (a *Analyzer) solveBudgeted(q Query, enc *logic.Encoder, solveSpan *obs.Span, assumptions ...*logic.Formula) solveOutcome {
	s := enc.Solver()
	deadline := a.budget.Deadline
	conflicts := a.budget.Conflicts
	if conflicts == 0 {
		conflicts = a.conflictBudget
	}
	maxAttempts := a.budget.Retries + 1
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	escalate := a.budget.Escalate
	if escalate <= 1 {
		escalate = DefaultEscalation
	}
	hook := a.faults.SolverHook()
	defer func() {
		s.SetConflictHook(nil)
		s.SetConflictBudget(a.conflictBudget)
		s.SetInterrupt(a.interrupt)
	}()

	for attempt := 1; ; attempt++ {
		a.qs.SetAttempt(attempt)
		// expired is written by the interrupt hook, which portfolio
		// replicas poll concurrently — it must be atomic.
		var expired atomic.Bool
		switch {
		case deadline > 0:
			deadlineAt := time.Now().Add(deadline)
			s.SetInterrupt(func() bool {
				if a.interrupt != nil && a.interrupt() {
					return true
				}
				if time.Now().After(deadlineAt) {
					expired.Store(true)
					return true
				}
				return false
			})
		default:
			s.SetInterrupt(a.interrupt)
		}
		s.SetConflictHook(hook)
		stallsBefore := a.faults.Counts().SolverStalls

		// Portfolio escalation: with a portfolio armed, the serial solver
		// first gets a short prelude budget (the escalation threshold); a
		// query that decides within it never pays for cloning replicas,
		// while a hard one escalates to the portfolio with the attempt's
		// full conflict budget. Replicas inherit the prelude's learned
		// clauses through Clone, so the prelude work is never wasted.
		serialConflicts := conflicts
		escalatable := a.portfolio > 1
		if escalatable {
			if thr := a.portfolioThreshold(); serialConflicts == 0 || serialConflicts > thr {
				serialConflicts = thr
			} else {
				// The whole attempt fits under the threshold: portfolio
				// overhead would exceed the remaining budget.
				escalatable = false
			}
		}
		s.SetConflictBudget(serialConflicts)

		a.faults.BeforeSolve()
		status := enc.Solve(assumptions...)
		if status == sat.Unsolved && escalatable &&
			!(a.interrupt != nil && a.interrupt()) && !expired.Load() &&
			a.faults.Counts().SolverStalls == stallsBefore {
			solveSpan.Event("portfolio", obs.A("replicas", a.portfolio), obs.A("attempt", attempt))
			a.qs.Record("escalate", fmt.Sprintf("replicas=%d", a.portfolio), s.Stats().Conflicts)
			if a.qs != nil {
				// Publish the racing lineup before the race resolves so a
				// watcher sees which strategies are in flight.
				lineup := make([]obs.ReplicaSnapshot, a.portfolio)
				for i := range lineup {
					lineup[i] = obs.ReplicaSnapshot{ID: i, Strategy: sat.StrategyName(i)}
				}
				a.qs.SetReplicas(lineup)
			}
			s.SetConflictBudget(conflicts)
			var pstats sat.PortfolioStats
			status, pstats = enc.SolvePortfolio(a.portfolioOptions(), assumptions...)
			a.recordPortfolio(q, pstats)
		}
		if status != sat.Unsolved {
			return solveOutcome{status: status, attempts: attempt}
		}

		// Diagnose why this attempt gave up, most specific first.
		reason := ReasonConflicts
		switch {
		case a.interrupt != nil && a.interrupt():
			return solveOutcome{status: status, attempts: attempt, reason: ReasonInterrupted}
		case expired.Load():
			reason = ReasonDeadline
		case a.faults.Counts().SolverStalls > stallsBefore:
			reason = ReasonInjectedStall
		}
		if attempt >= maxAttempts {
			a.metrics.Inc("scadaver_queries_unsolved_total", map[string]string{
				"property": q.Property.String(), "reason": reason,
			})
			// The metric label above stays the bare reason; only the
			// Result carries the flight-record suffix.
			a.qs.Record("exhausted", reason, s.Stats().Conflicts)
			return solveOutcome{status: status, attempts: attempt, reason: a.flightReason(reason, solveSpan)}
		}

		a.metrics.Inc("scadaver_retries_total", map[string]string{
			"property": q.Property.String(), "reason": reason,
		})
		solveSpan.Event("retry", obs.A("attempt", attempt), obs.A("reason", reason))
		a.qs.Record("retry", reason, s.Stats().Conflicts)
		if deadline > 0 {
			deadline = time.Duration(float64(deadline) * escalate)
		}
		if conflicts > 0 {
			conflicts = uint64(float64(conflicts) * escalate)
		}
	}
}
