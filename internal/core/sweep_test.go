package core

import (
	"fmt"
	"testing"

	"scadaver/internal/powergrid"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
)

// TestSweepMatchesVerify pins the reuse path's soundness: for every
// budget in a k-sweep, the incremental verdict equals the from-scratch
// one, and any reported vector is a genuine minimal violation.
func TestSweepMatchesVerify(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, prop := range []Property{Observability, SecuredObservability} {
		sw, err := a.NewSweep(prop, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 6; k++ {
			inc, err := sw.VerifyK(k)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := a.Verify(Query{Property: prop, Combined: true, K: k})
			if err != nil {
				t.Fatal(err)
			}
			if inc.Status != fresh.Status {
				t.Fatalf("%v k=%d: sweep %v, fresh %v", prop, k, inc.Status, fresh.Status)
			}
			if inc.Status == sat.Sat {
				// The witness may differ between search strategies, but it
				// must be a real violation within the budget.
				if inc.Vector == nil || inc.Vector.Size() > k {
					t.Fatalf("%v k=%d: bad vector %v", prop, k, inc.Vector)
				}
				f := failuresOf(*inc.Vector)
				if !a.violatedUnder(Query{Property: prop}, f) {
					t.Fatalf("%v k=%d: vector %v does not violate the property", prop, k, inc.Vector)
				}
			}
			if inc.Stats.Solves != 1 {
				t.Fatalf("per-solve stats: Solves = %d, want 1", inc.Stats.Solves)
			}
		}
	}
}

func failuresOf(v ThreatVector) Failures {
	f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
	for _, id := range v.Devices() {
		f.Devices[id] = true
	}
	for _, id := range v.Links {
		f.Links[id] = true
	}
	return f
}

// TestSweepSplitBudgets exercises VerifySplit against the fresh path.
func TestSweepSplitBudgets(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k1 := 0; k1 <= 3; k1++ {
		for k2 := 0; k2 <= 2; k2++ {
			inc, err := sw.VerifySplit(k1, k2)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := a.Verify(Query{Property: Observability, K1: k1, K2: k2})
			if err != nil {
				t.Fatal(err)
			}
			if inc.Status != fresh.Status {
				t.Fatalf("(%d,%d): sweep %v, fresh %v", k1, k2, inc.Status, fresh.Status)
			}
		}
	}
}

// TestSweepReusesEncoding asserts the point of the sweep: across a
// k-sweep only the cardinality counters are added, so the solver grows
// by far less than a fresh encoding per k would.
func TestSweepReusesEncoding(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := a.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.VerifyK(0); err != nil {
		t.Fatal(err)
	}
	base := sw.enc.Solver().NumVars()
	for k := 1; k <= 5; k++ {
		if _, err := sw.VerifyK(k); err != nil {
			t.Fatal(err)
		}
	}
	grown := sw.enc.Solver().NumVars() - base
	// A fresh encoding per k would replicate the full structural model
	// (all `base` variables) five more times; the sweep adds only the
	// per-k sequential counters, so on average each extra k must cost
	// well under half a structural model.
	if grown >= 5*base/2 {
		t.Fatalf("sweep grew by %d vars over a %d-var base across 5 budgets; encoding not reused", grown, base)
	}
	if sw.enc.Solver().Stats().Solves != 6 {
		t.Fatalf("Solves = %d, want 6", sw.enc.Solver().Stats().Solves)
	}
}

// TestSweepInvalidQuery checks validation still applies on the fast path.
func TestSweepInvalidQuery(t *testing.T) {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewSweep(Property(42), 0, 0); err == nil {
		t.Fatal("bad property must error")
	}
	sw, err := a.NewSweep(Observability, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.VerifyK(-1); err == nil {
		t.Fatal("negative budget must error")
	}
}

// TestEnumerateBudgetPerSolve is the regression test for the conflict
// budget during threat enumeration: the budget must be granted anew for
// every solve of the enumeration loop, not consumed across the whole
// enumeration. The test measures the real per-solve conflict profile of
// an enumeration, then re-runs it with a budget sized between the
// largest single solve and the cumulative total: under per-solve
// semantics the full threat space is still enumerated; under shared
// semantics the loop would die mid-way with vectors missing.
func TestEnumerateBudgetPerSolve(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7020, 2)
	q := Query{Property: Observability, K1: 2, K2: 1}

	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Profile the unbudgeted enumeration solve by solve.
	enc := a.encode(q)
	var maxDelta, prev uint64
	solves := 0
	for {
		status := enc.Solve()
		total := enc.Solver().Stats().Conflicts
		if d := total - prev; d > maxDelta {
			maxDelta = d
		}
		prev = total
		solves++
		if status != sat.Sat {
			break
		}
		v := a.minimizeVector(q, a.extractVector(q, enc))
		block := make(map[string]bool, v.Size())
		for _, id := range v.Devices() {
			block[fmt.Sprintf("Node_%d", id)] = false
		}
		enc.Block(block)
	}
	totalConflicts := prev
	if totalConflicts <= maxDelta+1 || solves < 3 {
		t.Skipf("instance cannot discriminate budget semantics (total=%d max=%d solves=%d)",
			totalConflicts, maxDelta, solves)
	}

	full, err := a.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}

	budget := maxDelta + 1 // every single solve fits; the sum does not
	if budget >= totalConflicts {
		t.Skipf("no budget separates per-solve (%d) from cumulative (%d)", maxDelta, totalConflicts)
	}
	ab, err := NewAnalyzer(cfg, WithConflictBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ab.EnumerateThreats(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full) {
		t.Fatalf("budget %d enumerated %d vectors, want all %d: budget was consumed across solves",
			budget, len(got), len(full))
	}
}
