package scadanet

import (
	"fmt"

	"scadaver/internal/secpolicy"
)

// DeviceID identifies a SCADA device (1-based in configurations).
type DeviceID int

// DeviceKind classifies SCADA devices.
type DeviceKind int

// The device kinds the model distinguishes. PLCs behave like IEDs for
// the analyses in scope and are represented as IEDs.
const (
	IED DeviceKind = iota + 1
	RTU
	MTU
	Router
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	switch k {
	case IED:
		return "ied"
	case RTU:
		return "rtu"
	case MTU:
		return "mtu"
	case Router:
		return "router"
	}
	return "unknown"
}

// ParseDeviceKind parses the textual form used in config files.
func ParseDeviceKind(s string) (DeviceKind, error) {
	switch s {
	case "ied", "plc":
		return IED, nil
	case "rtu":
		return RTU, nil
	case "mtu":
		return MTU, nil
	case "router", "wan":
		return Router, nil
	}
	return 0, fmt.Errorf("scadanet: unknown device kind %q", s)
}

// Protocol names an ICS communication protocol.
type Protocol string

// Common ICS protocols.
const (
	Modbus   Protocol = "modbus"
	DNP3     Protocol = "dnp3"
	IEC61850 Protocol = "iec61850"
)

// Device is one SCADA device with its communication and security
// configuration (the paper's device profile: CommProto_i, Crypt_i,
// IpAddr_i).
type Device struct {
	ID        DeviceID
	Kind      DeviceKind
	Protocols []Protocol          // supported protocols; empty = any
	Profiles  []secpolicy.Profile // supported crypto profiles
	IPAddr    string              // informational
	Down      bool                // statically configured as unavailable
}

// FieldDevice reports whether the device participates in the failure
// model (IEDs and RTUs per the paper; the MTU and routers are assumed
// available).
func (d *Device) FieldDevice() bool { return d.Kind == IED || d.Kind == RTU }

// SharesProtocol implements CommProtoPairing_{i,j}: the devices support
// a common protocol. A device with an empty protocol list is treated as
// protocol-agnostic (it can speak to anything).
func (d *Device) SharesProtocol(o *Device) bool {
	if len(d.Protocols) == 0 || len(o.Protocols) == 0 {
		return true
	}
	for _, p := range d.Protocols {
		for _, q := range o.Protocols {
			if p == q {
				return true
			}
		}
	}
	return false
}

// LinkID identifies a communication link.
type LinkID int

// Link is a (possibly abstracted) communication path between two
// devices: NodePair_l and LinkStatus_l in the paper, plus the pairwise
// security profile of the Table II input format.
type Link struct {
	ID   LinkID
	A, B DeviceID
	Down bool // statically configured as down

	// Profiles is the security profile of this host pair, as in the
	// paper's Table II ("security profile (if exists) between the
	// communicating entities"). When empty, hop security is judged from
	// the endpoint devices' own profile intersection.
	Profiles []secpolicy.Profile

	Medium string // informational: ethernet, wireless, modem, ...
}

// Other returns the link endpoint opposite to id (0 if id is not an
// endpoint).
func (l *Link) Other(id DeviceID) DeviceID {
	switch id {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return 0
}

// Connects reports whether the link joins a and b (in either order).
func (l *Link) Connects(a, b DeviceID) bool {
	return (l.A == a && l.B == b) || (l.A == b && l.B == a)
}
