// Package scadanet models the SCADA communication network the paper
// verifies: field devices (IEDs, RTUs), the MTU (control server),
// routers, communication links with protocol and security profiles, the
// IED→measurement assignment, and path enumeration from IEDs to the MTU.
//
// In the paper's notation (Section III), a Network provides the sets
// and predicates the AssuredDelivery_I judgement is built from: the
// device universe with its Up/Down status variables, Link_{i,j} with a
// per-link protocol and cryptographic profile, and the acyclic
// communication paths Path_{i→MTU} that package core turns into the
// delivery disjunction. HopPairing captures the hop conditions of
// AssuredDelivery — both endpoints speak a common protocol and their
// security profiles are compatible — while the security judgement
// itself (Authenticated, IntegrityProtected) lives in package
// secpolicy.
//
// A Config bundles the network with the powergrid measurement model and
// the resiliency specification (K1, K2, R) into one verifier input; the
// .scada text format (ParseConfig / WriteConfig) serializes it.
// CaseStudyConfig rebuilds the paper's Section IV 5-bus case study,
// including the Fig. 4 rewired-topology variant.
//
// Nothing in the analysis mutates a built Network or Config (Clone
// exists for callers that need modified copies, e.g. hardening), so one
// Config may be shared read-only by any number of concurrent analyzers
// — the property core.Runner relies on.
package scadanet
