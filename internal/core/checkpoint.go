package core

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"scadaver/internal/atomicio"
	"scadaver/internal/faultinject"
	"scadaver/internal/scadanet"
)

// CheckpointSchema versions the checkpoint file layout. Bump it when
// the header or entry shapes change incompatibly; resume then rejects
// stale files loudly instead of misreading them.
const CheckpointSchema = "scadaver-checkpoint/1"

// Checkpoint kinds: campaigns only resume from checkpoints of their
// own kind (enforced by OpenCheckpoint alongside the fingerprint).
const (
	// CheckpointKindCampaign marks indexed verification campaigns
	// (Runner.VerifyAllResumable, Sweep.VerifyRange); entries pair an
	// input index with its finished Result.
	CheckpointKindCampaign = "campaign"
	// CheckpointKindEnumerate marks threat-space enumerations
	// (EnumerateThreatsResumable); entries are ThreatVectors.
	CheckpointKindEnumerate = "enumerate"
)

// campaignEntry is the checkpoint entry of indexed campaigns: the input
// index (query position, or the budget k for sweeps) and its result.
type campaignEntry struct {
	Index  int     `json:"index"`
	Result *Result `json:"result"`
}

// ErrCheckpointMismatch reports that an existing checkpoint file was
// written by a different campaign (different configuration, queries, or
// campaign kind) and must not seed this one. Resuming against the wrong
// campaign would silently skip work that was never done — the mismatch
// is an error, never a warning.
var ErrCheckpointMismatch = errors.New("checkpoint does not match this campaign")

// CampaignFingerprint derives a stable identity for a campaign from its
// full input: the canonical text rendering of the configuration plus
// the canonical JSON of every extra input that shapes the campaign (the
// query, the query list, the sweep range). Two campaigns share a
// fingerprint exactly when a checkpoint of one validly resumes the
// other — notably, the worker count is excluded on purpose: results are
// keyed by input index, so a checkpoint taken with 8 workers resumes
// fine with 1, and vice versa.
func CampaignFingerprint(cfg *scadanet.Config, kind string, extra ...any) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", CheckpointSchema, kind)
	if err := scadanet.WriteConfig(h, cfg); err != nil {
		return "", fmt.Errorf("fingerprint config: %w", err)
	}
	for _, e := range extra {
		b, err := json.Marshal(e)
		if err != nil {
			return "", fmt.Errorf("fingerprint input: %w", err)
		}
		h.Write(b)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// checkpointHeader is the first JSONL line of a checkpoint file; every
// following line is one campaign-specific entry.
type checkpointHeader struct {
	Schema      string `json:"schema"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
}

// Checkpoint persists a campaign's completed work units as a JSONL
// file — one header line binding the file to a campaign fingerprint,
// then one line per completed unit — so an interrupted campaign resumes
// without redoing them. Every flush rewrites the file atomically
// (tmp + rename in the same directory), so a crash or an injected I/O
// fault mid-write leaves the previous complete checkpoint intact: the
// file on disk is always a valid, if slightly stale, checkpoint.
//
// A nil *Checkpoint is valid and disables checkpointing: every method
// no-ops. Methods are safe for concurrent use by campaign workers.
type Checkpoint struct {
	path        string
	kind        string
	fingerprint string

	mu      sync.Mutex
	loaded  []json.RawMessage
	entries []json.RawMessage
	faults  *faultinject.Faults
}

// OpenCheckpoint opens (or initializes) the checkpoint at path for the
// campaign identified by (kind, fingerprint). A missing file yields an
// empty checkpoint; an existing file must carry the same schema, kind
// and fingerprint or OpenCheckpoint fails with ErrCheckpointMismatch.
// Recovered entries are available through Entries. A torn partial final
// line (a writer killed mid-write) is dropped and the checkpoint
// resumes from the last complete entry; a malformed entry anywhere else
// is corruption and fails the open.
func OpenCheckpoint(path, kind, fingerprint string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, kind: kind, fingerprint: fingerprint}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("open checkpoint: %w", err)
	}
	defer f.Close()

	hdr, loaded, err := scanCheckpoint(f, path)
	if err != nil {
		return nil, err
	}
	if hdr == nil {
		return c, nil // empty file: treat as a fresh checkpoint
	}
	if hdr.Kind != kind || hdr.Fingerprint != fingerprint {
		return nil, fmt.Errorf(
			"%w: %s has schema=%q kind=%q fingerprint=%.12s…, campaign wants schema=%q kind=%q fingerprint=%.12s…",
			ErrCheckpointMismatch, path,
			hdr.Schema, hdr.Kind, hdr.Fingerprint,
			CheckpointSchema, kind, fingerprint)
	}
	c.loaded = loaded
	c.entries = append(c.entries, c.loaded...)
	return c, nil
}

// scanCheckpoint reads one checkpoint stream: the header line, then
// every complete entry. A nil header (with nil error) means the stream
// was empty. The schema is validated here; kind and fingerprint are the
// caller's to check, because importers learn them FROM the header while
// campaigns enforce them AGAINST it.
//
// A malformed FINAL line is a torn write: the writer (or the whole
// machine, or a mid-transfer network connection) died mid-line. Every
// complete entry before it is still good, so the torn tail is dropped
// and the campaign resumes from the last complete entry — the next
// flush rewrites the file whole. A malformed entry in the MIDDLE is a
// different animal: later entries prove the writer kept going, so the
// stream is corrupt, and resuming would silently skip work; refuse to
// guess.
func scanCheckpoint(r io.Reader, name string) (*checkpointHeader, []json.RawMessage, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("read checkpoint %s: %w", name, err)
		}
		return nil, nil, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: malformed header: %w", name, err)
	}
	if hdr.Schema != CheckpointSchema {
		return nil, nil, fmt.Errorf("%w: %s has schema %q, want %q",
			ErrCheckpointMismatch, name, hdr.Schema, CheckpointSchema)
	}
	var loaded []json.RawMessage
	var torn bool
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if torn {
			return nil, nil, fmt.Errorf("checkpoint %s: malformed entry %d", name, len(loaded)+1)
		}
		entry := make(json.RawMessage, len(line))
		copy(entry, line)
		if !json.Valid(entry) {
			torn = true
			continue
		}
		loaded = append(loaded, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("read checkpoint %s: %w", name, err)
	}
	return &hdr, loaded, nil
}

// WriteTo serializes the checkpoint in its on-disk JSONL form — the
// fingerprint-bound header line, then one line per entry — so a
// checkpoint can travel over a network connection exactly as it sits on
// disk. This is the export half of cross-node checkpoint handoff; the
// import half is ImportCheckpoint. A nil checkpoint writes nothing.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	if c == nil {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	hdr, err := json.Marshal(checkpointHeader{
		Schema: CheckpointSchema, Kind: c.kind, Fingerprint: c.fingerprint,
	})
	if err != nil {
		return 0, err
	}
	var n int64
	m, err := w.Write(append(hdr, '\n'))
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, e := range c.entries {
		m, err := w.Write(append([]byte(e), '\n'))
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Fingerprint returns the campaign fingerprint the checkpoint is bound
// to (empty for a nil checkpoint).
func (c *Checkpoint) Fingerprint() string {
	if c == nil {
		return ""
	}
	return c.fingerprint
}

// NewTransferCheckpoint builds an in-memory, path-less checkpoint from
// entries already serialized in checkpoint form. It never touches disk
// (Add and Flush fail on the empty path), existing purely to be
// WriteTo-serialized: a coordinator that journaled a stream's entries
// hands them to a new owner by serializing a transfer checkpoint into a
// PUT body. Entries are used as-is; the caller keeps ownership.
func NewTransferCheckpoint(kind, fingerprint string, entries []json.RawMessage) *Checkpoint {
	return &Checkpoint{kind: kind, fingerprint: fingerprint, entries: entries}
}

// ImportCheckpoint materializes a checkpoint received over the wire
// (the body of a handoff PUT) at path. The stream must carry the
// current schema and the given kind — anything else is
// ErrCheckpointMismatch — while the fingerprint is taken from the
// stream's own header: the campaign that later opens the file enforces
// fingerprint identity, so a foreign-fingerprint import surfaces as a
// conflict at use, with the on-disk evidence intact. A torn final line
// (the transfer connection died mid-entry) is dropped exactly like a
// torn local write; the complete prefix still resumes. The file is
// written atomically, and an existing file at path bound to a
// DIFFERENT fingerprint is never clobbered — that is also
// ErrCheckpointMismatch.
func ImportCheckpoint(path, kind string, r io.Reader) (*Checkpoint, error) {
	hdr, loaded, err := scanCheckpoint(r, "import")
	if err != nil {
		return nil, err
	}
	if hdr == nil {
		return nil, fmt.Errorf("%w: import stream is empty", ErrCheckpointMismatch)
	}
	if hdr.Kind != kind {
		return nil, fmt.Errorf("%w: import has kind %q, want %q", ErrCheckpointMismatch, hdr.Kind, kind)
	}
	if existing, err := OpenCheckpoint(path, kind, hdr.Fingerprint); err != nil {
		return nil, err
	} else if len(existing.Entries()) > len(loaded) {
		// The resident journal is already ahead of the transferred one
		// (e.g. a retry raced a slower handoff); keep the longer record.
		return existing, nil
	}
	c := &Checkpoint{path: path, kind: kind, fingerprint: hdr.Fingerprint, loaded: loaded}
	c.entries = append(c.entries, loaded...)
	if err := c.Flush(); err != nil {
		return nil, fmt.Errorf("import checkpoint: %w", err)
	}
	return c, nil
}

// UseFaults threads a fault-injection plan into the checkpoint writer
// (transient I/O errors on flush). Nil plans — and nil checkpoints —
// are no-ops.
func (c *Checkpoint) UseFaults(f *faultinject.Faults) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

// Entries returns the work units recovered from disk when the
// checkpoint was opened (nil for a fresh or nil checkpoint).
func (c *Checkpoint) Entries() []json.RawMessage {
	if c == nil {
		return nil
	}
	return c.loaded
}

// Add records one completed work unit and flushes the checkpoint file.
// A flush failure (disk full, transient I/O fault) is returned but must
// be survivable for the caller: the entry stays queued in memory and
// the next Add retries the whole file, while the previous on-disk
// checkpoint remains valid throughout.
func (c *Checkpoint) Add(v any) error {
	if c == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint entry: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, json.RawMessage(b))
	return c.flushLocked()
}

// Flush rewrites the checkpoint file from the in-memory entry list.
func (c *Checkpoint) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Checkpoint) flushLocked() error {
	hdr, err := json.Marshal(checkpointHeader{
		Schema: CheckpointSchema, Kind: c.kind, Fingerprint: c.fingerprint,
	})
	if err != nil {
		return err
	}
	return atomicio.WriteFile(c.path, func(w *bufio.Writer) error {
		out := c.faults.WrapWriter(w)
		if _, err := out.Write(append(hdr, '\n')); err != nil {
			return err
		}
		for _, e := range c.entries {
			if _, err := out.Write(append([]byte(e), '\n')); err != nil {
				return err
			}
		}
		return nil
	})
}
