package powergrid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickUniqueGroupsPartition: for arbitrary generated systems, the
// UMsrSet grouping is a partition of all measurement indices, forward
// and backward flows of a line always share a group, and injections of
// distinct buses never share one.
func TestQuickUniqueGroupsPartition(t *testing.T) {
	f := func(seed int64, busRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		buses := 3 + int(busRaw)%12
		maxExtra := buses*(buses-1)/2 - (buses - 1)
		extra := 0
		if maxExtra > 0 {
			extra = rng.Intn(minInt(maxExtra, buses) + 1)
		}
		sys, err := Generate(buses, buses-1+extra, rng)
		if err != nil {
			return false
		}
		ms := FullMeasurementSet(sys)
		groups := ms.UniqueGroups()

		seen := map[int]int{}
		for gi, g := range groups {
			for _, z := range g {
				if _, dup := seen[z]; dup {
					return false // not a partition
				}
				seen[z] = gi
			}
		}
		if len(seen) != ms.Len() {
			return false
		}
		// Forward/backward flow on each line share a group; injections
		// at distinct buses do not share one (susceptance collisions
		// across different lines are possible in principle but have
		// probability zero with continuous random reactances).
		for z := 0; z+1 < ms.Len(); z++ {
			a, b := ms.Msrs[z], ms.Msrs[z+1]
			if a.Kind == FlowForward && b.Kind == FlowBackward && a.From == b.To && a.To == b.From {
				if seen[z] != seen[z+1] {
					return false
				}
			}
		}
		injGroup := map[int]int{}
		for z, m := range ms.Msrs {
			if m.Kind != Injection {
				continue
			}
			for bus, g := range injGroup {
				if g == seen[z] && bus != m.From {
					return false
				}
			}
			injGroup[m.From] = seen[z]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStateSetsMatchRows: StateSet_Z contains exactly the non-zero
// columns of row Z.
func TestQuickStateSetsMatchRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys, err := Generate(4+rng.Intn(10), 3+rng.Intn(12)+3, rng)
		if err != nil {
			// Parameters may be inconsistent (too many branches); skip.
			return true
		}
		ms := FullMeasurementSet(sys)
		for z, m := range ms.Msrs {
			set := map[int]bool{}
			for _, x := range ms.StateSet(z) {
				set[x] = true
			}
			for x, v := range m.Row {
				nz := v != 0
				if nz != set[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
