// Package powergrid models the power-system side of the verifier: bus
// systems (buses and transmission lines with susceptances), the DC
// measurement model (line power flows and bus injections), and the
// measurement Jacobian whose sparsity pattern drives the observability
// analysis (StateSet_Z and UMsrSet_E in the paper's notation).
//
// The Observability property of the paper reduces to a cover question
// over this model: state estimation is solvable when the delivered
// measurements jointly touch every state variable, i.e. when the union
// of StateSet_Z over delivered measurements z is the full state set.
// MeasurementSet.StateSets exposes exactly that sparsity structure to
// package core, which encodes it propositionally; r-BadDataDetectability
// strengthens the cover so it survives the removal of any r
// measurements (the redundancy needed to detect r corrupted values,
// Section III-F).
//
// The embedded IEEE 14/30/57/118-bus test systems (ByName) and the
// 5-bus case-study system reproduce the evaluation inputs; numeric
// state estimation over the same Jacobian lives in package stateest.
package powergrid
