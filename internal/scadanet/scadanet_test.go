package scadanet

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"scadaver/internal/secpolicy"
)

func buildTiny(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	devs := []Device{
		{ID: 1, Kind: IED},
		{ID: 2, Kind: IED},
		{ID: 10, Kind: RTU},
		{ID: 11, Kind: RTU},
		{ID: 20, Kind: MTU},
	}
	for _, d := range devs {
		if _, err := n.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(a, b DeviceID) {
		t.Helper()
		if _, err := n.AddLink(a, b); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(1, 10)
	mustLink(2, 11)
	mustLink(10, 20)
	mustLink(11, 20)
	mustLink(10, 11)
	if err := n.AssignMeasurements(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignMeasurements(2, 3); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkBasics(t *testing.T) {
	n := buildTiny(t)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.MTUID() != 20 {
		t.Fatalf("MTUID = %d", n.MTUID())
	}
	if len(n.Devices()) != 5 || len(n.Links()) != 5 {
		t.Fatalf("%d devices, %d links", len(n.Devices()), len(n.Links()))
	}
	if got := n.DevicesOfKind(IED); len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("IEDs = %v", got)
	}
	if l := n.LinkBetween(10, 1); l == nil || !l.Connects(1, 10) {
		t.Fatal("LinkBetween broken")
	}
	if n.LinkBetween(1, 2) != nil {
		t.Fatal("phantom link")
	}
	if got := n.MeasurementsOf(1); len(got) != 2 || got[0] != 1 {
		t.Fatalf("MeasurementsOf = %v", got)
	}
	if got := n.MeasurementsOf(99); len(got) != 0 {
		t.Fatalf("unknown IED measurements = %v", got)
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddDevice(Device{ID: 1, Kind: IED}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddDevice(Device{ID: 1, Kind: RTU}); !errors.Is(err, ErrDuplicateDevice) {
		t.Fatalf("want ErrDuplicateDevice, got %v", err)
	}
	if _, err := n.AddLink(1, 99); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
	if err := n.AssignMeasurements(99, 1); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
	if err := n.Validate(); !errors.Is(err, ErrNoMTU) {
		t.Fatalf("want ErrNoMTU, got %v", err)
	}
	if _, err := n.AddDevice(Device{ID: 2, Kind: MTU}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddDevice(Device{ID: 3, Kind: MTU}); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); !errors.Is(err, ErrMultipleMTU) {
		t.Fatalf("want ErrMultipleMTU, got %v", err)
	}
	if err := n.AssignMeasurements(2, 1); !errors.Is(err, ErrNotIED) {
		t.Fatalf("want ErrNotIED, got %v", err)
	}
}

func TestDeviceKindStringAndParse(t *testing.T) {
	for _, k := range []DeviceKind{IED, RTU, MTU, Router} {
		parsed, err := ParseDeviceKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("round trip %v: %v %v", k, parsed, err)
		}
	}
	if k, err := ParseDeviceKind("plc"); err != nil || k != IED {
		t.Fatalf("plc: %v %v", k, err)
	}
	if _, err := ParseDeviceKind("toaster"); err == nil {
		t.Fatal("expected error")
	}
	if DeviceKind(0).String() != "unknown" {
		t.Fatal("zero kind String")
	}
}

func TestSharesProtocol(t *testing.T) {
	a := &Device{Protocols: []Protocol{DNP3}}
	b := &Device{Protocols: []Protocol{Modbus}}
	c := &Device{Protocols: []Protocol{Modbus, DNP3}}
	anyDev := &Device{}
	if a.SharesProtocol(b) {
		t.Fatal("dnp3 vs modbus should not pair")
	}
	if !a.SharesProtocol(c) || !b.SharesProtocol(c) {
		t.Fatal("shared protocol missed")
	}
	if !a.SharesProtocol(anyDev) || !anyDev.SharesProtocol(b) {
		t.Fatal("protocol-agnostic device must pair")
	}
}

func TestPathsEnumeration(t *testing.T) {
	n := buildTiny(t)
	paths := n.Paths(1, 0)
	// IED1: 1-10-20 and 1-10-11-20.
	if len(paths) != 2 {
		t.Fatalf("IED1 paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if p[0].Connects(1, 10) {
			continue
		}
		t.Fatalf("path does not start at IED1's uplink: %v", p)
	}
	// Paths never route through another IED.
	for _, p := range paths {
		for _, l := range p {
			if (l.A == 2 || l.B == 2) && !(l.A == 1 || l.B == 1) {
				t.Fatalf("path routes through IED2: %v", p)
			}
		}
	}
	if got := n.Paths(99, 0); got != nil {
		t.Fatal("unknown IED should yield no paths")
	}
	if got := n.Paths(10, 0); got != nil {
		t.Fatal("non-IED should yield no paths")
	}
	// maxPaths caps enumeration.
	if got := n.Paths(1, 1); len(got) != 1 {
		t.Fatalf("maxPaths=1 returned %d", len(got))
	}
}

func TestLinkOther(t *testing.T) {
	l := &Link{A: 3, B: 7}
	if l.Other(3) != 7 || l.Other(7) != 3 || l.Other(5) != 0 {
		t.Fatal("Other broken")
	}
}

func TestHopCapsAndPairing(t *testing.T) {
	n := buildTiny(t)
	pol := secpolicy.Default()
	l := n.LinkBetween(1, 10)

	// Bare link between profile-less devices: pairs, but no caps.
	proto, crypto := n.HopPairing(l)
	if !proto || !crypto {
		t.Fatal("bare hop should pair")
	}
	if caps := n.HopCaps(l, pol); caps != 0 {
		t.Fatalf("bare hop caps = %v", caps)
	}

	// Link-level profile dominates.
	l.Profiles = []secpolicy.Profile{{Algo: secpolicy.CHAP, KeyBits: 64}, {Algo: secpolicy.SHA2, KeyBits: 256}}
	if caps := n.HopCaps(l, pol); !caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects) {
		t.Fatalf("link profile caps = %v", caps)
	}
	if _, crypto := n.HopPairing(l); !crypto {
		t.Fatal("explicit link profile implies crypto pairing")
	}

	// Device-level pairing: both sides must share an algorithm.
	l2 := n.LinkBetween(2, 11)
	n.Device(2).Profiles = []secpolicy.Profile{{Algo: secpolicy.HMAC, KeyBits: 128}}
	n.Device(11).Profiles = []secpolicy.Profile{{Algo: secpolicy.AES, KeyBits: 256}}
	if _, crypto := n.HopPairing(l2); crypto {
		t.Fatal("disjoint device profiles must not pair")
	}
	n.Device(11).Profiles = append(n.Device(11).Profiles, secpolicy.Profile{Algo: secpolicy.HMAC, KeyBits: 256})
	if _, crypto := n.HopPairing(l2); !crypto {
		t.Fatal("shared algorithm must pair")
	}
	if caps := n.HopCaps(l2, pol); !caps.Has(secpolicy.Authenticates) {
		t.Fatalf("device-pair caps = %v", caps)
	}
}

func TestRemoveLink(t *testing.T) {
	n := buildTiny(t)
	l := n.LinkBetween(10, 11)
	if !n.RemoveLink(l.ID) {
		t.Fatal("RemoveLink failed")
	}
	if n.LinkBetween(10, 11) != nil {
		t.Fatal("link survived removal")
	}
	if n.RemoveLink(l.ID) {
		t.Fatal("double removal succeeded")
	}
	// IED1 now has a single path.
	if got := n.Paths(1, 0); len(got) != 1 {
		t.Fatalf("paths after removal = %d", len(got))
	}
}

func TestCaseStudyConfig(t *testing.T) {
	for _, fig4 := range []bool{false, true} {
		cfg, err := CaseStudyConfig(fig4)
		if err != nil {
			t.Fatalf("fig4=%v: %v", fig4, err)
		}
		if cfg.Msrs.Len() != 14 || cfg.Msrs.NStates != 5 {
			t.Fatalf("measurements %d states %d", cfg.Msrs.Len(), cfg.Msrs.NStates)
		}
		if got := len(cfg.Net.DevicesOfKind(IED)); got != 8 {
			t.Fatalf("IEDs = %d", got)
		}
		if got := len(cfg.Net.DevicesOfKind(RTU)); got != 4 {
			t.Fatalf("RTUs = %d", got)
		}
		if got := len(cfg.Net.Links()); got != 13 {
			t.Fatalf("links = %d", got)
		}
		// All 14 measurements are assigned exactly once.
		seen := map[int]int{}
		for _, d := range cfg.Net.DevicesOfKind(IED) {
			for _, z := range cfg.Net.MeasurementsOf(d.ID) {
				seen[z]++
			}
		}
		for z := 1; z <= 14; z++ {
			if seen[z] != 1 {
				t.Fatalf("measurement %d assigned %d times", z, seen[z])
			}
		}
		// Topology difference between the figures.
		if fig4 {
			if cfg.Net.LinkBetween(9, 14) != nil || cfg.Net.LinkBetween(9, 12) == nil {
				t.Fatal("fig4 rewiring missing")
			}
		} else {
			if cfg.Net.LinkBetween(9, 14) == nil {
				t.Fatal("fig3 link 9-14 missing")
			}
		}
		// Every IED reaches the MTU.
		for _, d := range cfg.Net.DevicesOfKind(IED) {
			if len(cfg.Net.Paths(d.ID, 0)) == 0 {
				t.Fatalf("IED %d unreachable", d.ID)
			}
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	cfg, err := CaseStudyConfig(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, buf.String())
	}
	if back.Msrs.Len() != cfg.Msrs.Len() || back.Msrs.NStates != cfg.Msrs.NStates {
		t.Fatal("measurement model changed in round trip")
	}
	if len(back.Net.Links()) != len(cfg.Net.Links()) {
		t.Fatal("link count changed")
	}
	if back.K1 != cfg.K1 || back.K2 != cfg.K2 || back.R != cfg.R {
		t.Fatal("resiliency spec changed")
	}
	// Security profiles survive.
	l := back.Net.LinkBetween(2, 9)
	if l == nil || len(l.Profiles) != 2 {
		t.Fatalf("security profiles lost: %+v", l)
	}
	// Jacobian rows survive numerically.
	for z := 0; z < cfg.Msrs.Len(); z++ {
		for x := 0; x < cfg.Msrs.NStates; x++ {
			if back.Msrs.Msrs[z].Row[x] != cfg.Msrs.Msrs[z].Row[x] {
				t.Fatalf("jacobian[%d][%d] changed", z, x)
			}
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"content before section", "5 5\n"},
		{"unknown section", "[bogus]\nx\n"},
		{"bad jacobian entry", "[jacobian]\n1 x\n"},
		{"bad device kind", "[jacobian]\n1 0\n[devices]\ntoaster 1\n"},
		{"bad link", "[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[links]\n1\n"},
		{"unknown link device", "[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[links]\n1 9\n"},
		{"security for missing link", "[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[links]\n1 2\n[security]\n1 9 hmac 128\n"},
		{"bad resiliency", "[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[resiliency]\nx y\n"},
		{"missing jacobian", "[devices]\nied 1\nmtu 2\n"},
		{"msr out of range", "[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[links]\n1 2\n[measurements]\n1 5\n"},
		{"negative resiliency", "[jacobian]\n1 0\n[devices]\nied 1\nmtu 2\n[links]\n1 2\n[resiliency]\n-1 0\n"},
	}
	for _, tc := range cases {
		if _, err := ParseConfig(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseConfigComments(t *testing.T) {
	in := `
# a comment
[jacobian]
1 -1
-1 1

[devices]
ied 1 2
rtu 3
mtu 4

[links]
1 3
2 3
3 4

[measurements]
1 1
2 2

[protocols]
1 dnp3 modbus

[resiliency]
0 0 1
`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Msrs.Len() != 2 || cfg.K1 != 0 || cfg.K2 != 0 || cfg.R != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	d := cfg.Net.Device(1)
	if len(d.Protocols) != 2 || d.Protocols[0] != DNP3 {
		t.Fatalf("protocols = %v", d.Protocols)
	}
}
