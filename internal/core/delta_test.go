package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"scadaver/internal/faultinject"
	"scadaver/internal/obs"
	"scadaver/internal/powergrid"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// deltaQueries is the equivalence battery run after every mutation:
// plain and secured observability, bad-data detectability, and a
// link-budget query, so every guarded-group family (dev, lnk, card,
// pair, del, dz, prop) is exercised.
func deltaQueries() []Query {
	return []Query{
		{Property: Observability, Combined: true, K: 1},
		{Property: SecuredObservability, Combined: true, K: 1},
		{Property: BadDataDetectability, Combined: true, K: 1, R: 1},
		{Property: Observability, Combined: true, K: 1, KL: 1},
	}
}

// randomOp draws one applicable mutation op for the configuration. The
// generator is deterministic in r, and it only proposes ops Apply can
// accept, retrying internally otherwise (device flips, link removal,
// link addition with an explicit pairwise profile).
func randomOp(t *testing.T, r *rand.Rand, cfg *scadanet.Config) scadanet.Op {
	t.Helper()
	devices := append([]*scadanet.Device(nil), cfg.Net.Devices()...)
	sort.Slice(devices, func(i, j int) bool { return devices[i].ID < devices[j].ID })
	var field, down []*scadanet.Device
	for _, d := range devices {
		if !d.FieldDevice() {
			continue
		}
		if d.Down {
			down = append(down, d)
		} else {
			field = append(field, d)
		}
	}
	links := cfg.Net.Links()
	for tries := 0; tries < 100; tries++ {
		switch r.Intn(4) {
		case 0:
			if len(field) == 0 {
				continue
			}
			return scadanet.Op{Kind: scadanet.OpDeviceDown, Device: field[r.Intn(len(field))].ID}
		case 1:
			if len(down) == 0 {
				continue
			}
			return scadanet.Op{Kind: scadanet.OpDeviceUp, Device: down[r.Intn(len(down))].ID}
		case 2:
			if len(links) < 3 {
				continue
			}
			return scadanet.Op{Kind: scadanet.OpLinkRemove, Link: links[r.Intn(len(links))].ID}
		case 3:
			if len(field) == 0 {
				continue
			}
			return scadanet.Op{
				Kind:     scadanet.OpLinkAdd,
				A:        cfg.Net.MTUID(),
				B:        field[r.Intn(len(field))].ID,
				Profiles: []string{"hmac", "256"},
			}
		}
	}
	t.Fatal("no applicable mutation op found")
	return scadanet.Op{}
}

// randomDelta applies one random single-op delta, retrying with a fresh
// op if the mutated configuration fails validation.
func randomDelta(t *testing.T, r *rand.Rand, cfg *scadanet.Config) (*scadanet.Config, scadanet.Delta) {
	t.Helper()
	for tries := 0; tries < 100; tries++ {
		d := scadanet.Delta{Ops: []scadanet.Op{randomOp(t, r, cfg)}}
		next, _, err := cfg.Apply(d)
		if err != nil {
			continue
		}
		return next, d
	}
	t.Fatal("no applicable delta found")
	return nil, scadanet.Delta{}
}

// TestDeltaEquivalenceRandomMutations is the incremental-verification
// soundness gate (DESIGN.md §16): across a randomized mutation
// sequence, every verdict computed on warm, evolved snapshots — guarded
// groups diffed by content signature, learnt clauses carried over
// through the RUP gate — must equal a cold re-encode of the mutated
// configuration, for every property family, with and without
// preprocessing on the master.
func TestDeltaEquivalenceRandomMutations(t *testing.T) {
	systems := []struct {
		name  string
		bus   *powergrid.BusSystem
		seed  int64
		steps int
	}{
		{"ieee14", powergrid.IEEE14(), 7, 6},
		{"ieee30", powergrid.IEEE30(), 11, 3},
	}
	for _, sys := range systems {
		if sys.name == "ieee30" && testing.Short() {
			continue
		}
		for _, pre := range []bool{false, true} {
			name := sys.name
			if pre {
				name += "+presimplify"
			}
			t.Run(name, func(t *testing.T) {
				cache := NewEncodingCache(CacheWithDelta())
				opts := []Option{WithEncodingCache(cache), WithPresimplify(pre)}
				cfg := synthConfig(t, sys.bus, sys.seed, 2)
				r := rand.New(rand.NewSource(sys.seed * 100))

				// Warm the cache so the mutation sequence evolves built
				// entries instead of rebuilding from scratch.
				warm, err := NewAnalyzer(cfg, opts...)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range deltaQueries() {
					if _, err := warm.Verify(q); err != nil {
						t.Fatal(err)
					}
				}

				var reuse, reencoded uint64
				for step := 0; step < sys.steps; step++ {
					next, d := randomDelta(t, r, cfg)
					ms, err := cache.Mutate(cfg, next, opts...)
					if err != nil {
						t.Fatalf("step %d (%s): %v", step, d, err)
					}
					if ms.Entries == 0 {
						t.Fatalf("step %d (%s): mutation evolved no cache entries", step, d)
					}
					reuse += ms.DeltaReuse
					reencoded += ms.DeltaReencoded

					inc, err := NewAnalyzer(next, opts...)
					if err != nil {
						t.Fatal(err)
					}
					cold, err := NewAnalyzer(next)
					if err != nil {
						t.Fatal(err)
					}
					var claimedReuse uint64
					for _, q := range deltaQueries() {
						ri, err := inc.Verify(q)
						if err != nil {
							t.Fatalf("step %d (%s) %v incremental: %v", step, d, q, err)
						}
						rc, err := cold.Verify(q)
						if err != nil {
							t.Fatalf("step %d (%s) %v cold: %v", step, d, q, err)
						}
						if ri.Status != rc.Status {
							t.Fatalf("step %d (%s) %v: incremental %v, cold %v",
								step, d, q, ri.Status, rc.Status)
						}
						claimedReuse += ri.Phases.DeltaReuse + ri.Phases.DeltaReencoded
					}
					if claimedReuse == 0 {
						t.Fatalf("step %d (%s): no query claimed the mutation's delta counters", step, d)
					}
					cfg = next
				}
				if reuse == 0 {
					t.Fatal("mutation sequence reused no constraint groups")
				}
				if reencoded == 0 {
					t.Fatal("mutation sequence re-encoded no constraint groups (deltas had no effect?)")
				}
				t.Logf("%s: %d groups reused, %d re-encoded across %d mutations",
					name, reuse, reencoded, sys.steps)

				// Final configuration: the enumerated minimal threat set and
				// the resiliency boundary must also coincide with a cold run.
				incA, err := NewAnalyzer(cfg, opts...)
				if err != nil {
					t.Fatal(err)
				}
				coldA, err := NewAnalyzer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				q := Query{Property: Observability, Combined: true, K: 2}
				vi, err := incA.EnumerateThreats(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				vc, err := coldA.EnumerateThreats(q, 0)
				if err != nil {
					t.Fatal(err)
				}
				if gi, gc := sortedVectors(t, vi), sortedVectors(t, vc); gi != gc {
					t.Errorf("enumeration diverged on mutated config\n incremental %s\n cold %s", gi, gc)
				}
				bi, err := incA.MaxResiliencyCombined(SecuredObservability, 0)
				if err != nil {
					t.Fatal(err)
				}
				bc, err := coldA.MaxResiliencyCombined(SecuredObservability, 0)
				if err != nil {
					t.Fatal(err)
				}
				if bi != bc {
					t.Errorf("resiliency boundary diverged: incremental %d, cold %d", bi, bc)
				}
			})
		}
	}
}

// TestDeltaMutateIdenticalConfigIsFullReuse: a delta whose canonical
// result equals the original configuration (here: a verbatim clone,
// standing in for e.g. a key rotation to the same bits) must reuse
// every group of every entry and re-encode nothing.
func TestDeltaMutateIdenticalConfigIsFullReuse(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	cache := NewEncodingCache(CacheWithDelta())
	opts := []Option{WithEncodingCache(cache)}
	a, err := NewAnalyzer(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(Query{Property: Observability, Combined: true, K: 1}); err != nil {
		t.Fatal(err)
	}
	ms, err := cache.Mutate(cfg, cfg.Clone(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Entries == 0 || ms.DeltaReuse == 0 {
		t.Fatalf("identical-config mutation: %+v, want full reuse over >= 1 entry", ms)
	}
	if ms.DeltaReencoded != 0 {
		t.Fatalf("identical-config mutation re-encoded %d groups, want 0", ms.DeltaReencoded)
	}
}

// TestDeltaMutateCountersAndMetrics: a single-device delta must reuse
// the overwhelming majority of groups (only the device's cone
// re-encodes) and surface the counters through an attached registry.
func TestDeltaMutateCountersAndMetrics(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	reg := obs.NewRegistry()
	cache := NewEncodingCache(CacheWithDelta(), CacheWithMetrics(reg))
	opts := []Option{WithEncodingCache(cache)}
	a, err := NewAnalyzer(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(Query{Property: Observability, Combined: true, K: 1}); err != nil {
		t.Fatal(err)
	}

	var victim *scadanet.Device
	for _, d := range cfg.Net.DevicesOfKind(scadanet.IED) {
		if !d.Down {
			victim = d
			break
		}
	}
	if victim == nil {
		t.Fatal("no healthy IED to take down")
	}
	next, dirty, err := cfg.Apply(scadanet.Delta{Ops: []scadanet.Op{
		{Kind: scadanet.OpDeviceDown, Device: victim.ID},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty.Devices) != 1 || dirty.Devices[0] != victim.ID {
		t.Fatalf("dirty set %+v, want exactly device %d", dirty, victim.ID)
	}
	ms, err := cache.Mutate(cfg, next, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Entries != 1 {
		t.Fatalf("evolved %d entries, want 1", ms.Entries)
	}
	if ms.DeltaReuse == 0 || ms.DeltaReencoded == 0 {
		t.Fatalf("mutation stats %+v, want both reuse and re-encode", ms)
	}
	if ms.DeltaReencoded >= ms.DeltaReuse {
		t.Fatalf("single-device delta re-encoded %d groups vs %d reused; dirty cone is not tight",
			ms.DeltaReencoded, ms.DeltaReuse)
	}
	if got := reg.Counter("scadaver_delta_reuse_total", nil); got != float64(ms.DeltaReuse) {
		t.Fatalf("scadaver_delta_reuse_total = %v, want %d", got, ms.DeltaReuse)
	}
	if got := reg.Counter("scadaver_delta_reencoded_total", nil); got != float64(ms.DeltaReencoded) {
		t.Fatalf("scadaver_delta_reencoded_total = %v, want %d", got, ms.DeltaReencoded)
	}
}

// TestEncodingCacheLRUEviction: a bounded cache holds at most the
// configured number of snapshots, evicts the least recently used one,
// and counts evictions in the attached registry.
func TestEncodingCacheLRUEviction(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	reg := obs.NewRegistry()
	cache := NewEncodingCache(CacheWithLimit(2), CacheWithMetrics(reg))
	a, err := NewAnalyzer(cfg, WithEncodingCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	// Three distinct structures (property/R vary the key) through a
	// two-entry cache.
	for _, q := range []Query{
		{Property: Observability, Combined: true, K: 1},
		{Property: SecuredObservability, Combined: true, K: 1},
		{Property: BadDataDetectability, Combined: true, K: 1, R: 1},
	} {
		if _, err := a.Verify(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != 2 {
		t.Fatalf("bounded cache holds %d entries, want 2", got)
	}
	if got := reg.Counter("scadaver_encoding_cache_evictions_total", nil); got != 1 {
		t.Fatalf("eviction counter = %v, want 1", got)
	}
	// The first structure was the LRU victim; re-verifying it must still
	// work (rebuild) and evict again.
	if _, err := a.Verify(Query{Property: Observability, Combined: true, K: 1}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("scadaver_encoding_cache_evictions_total", nil); got != 2 {
		t.Fatalf("eviction counter after rebuild = %v, want 2", got)
	}
}

// TestChaosDeltaMutationStall: queries racing a stalled mutation
// (faultinject.StallMutations widens the evolution window while the
// lineage lock is held) must stay sound — in-flight queries keep
// solving the old sealed snapshot, post-mutation queries see the
// evolved one, and every verdict matches a cold encode of its
// configuration. Run under -race via make chaos.
func TestChaosDeltaMutationStall(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	faults := faultinject.New(1).StallMutations(30 * time.Millisecond)
	cache := NewEncodingCache(CacheWithDelta())
	opts := []Option{WithEncodingCache(cache), WithFaults(faults)}
	q := Query{Property: Observability, Combined: true, K: 1}

	oldA, err := NewAnalyzer(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := oldA.Verify(q)
	if err != nil {
		t.Fatal(err)
	}

	next, _, err := cfg.Apply(scadanet.Delta{Ops: []scadanet.Op{
		{Kind: scadanet.OpLinkRemove, Link: cfg.Net.Links()[0].ID},
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the old snapshot while the mutation stalls mid-evolution.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := oldA.Verify(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Status != oldRes.Status {
					errs <- err
					return
				}
			}
		}()
	}
	if _, err := cache.Mutate(cfg, next, opts...); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query racing stalled mutation: %v", err)
	}
	if got := faults.Counts().MutationStalls; got == 0 {
		t.Fatal("mutation stall fault never fired")
	}

	incA, err := NewAnalyzer(next, opts...)
	if err != nil {
		t.Fatal(err)
	}
	coldA, err := NewAnalyzer(next)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := incA.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := coldA.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Status != rc.Status {
		t.Fatalf("post-stall verdict: incremental %v, cold %v", ri.Status, rc.Status)
	}
}

// TestDeltaKeyRotationSignature: rotating a pairwise key to a length
// with the same policy judgement reuses the pair group; rotating below
// the policy threshold flips the judgement, re-encodes it, and must
// change the secured verdict exactly as a cold encode says.
func TestDeltaKeyRotationSignature(t *testing.T) {
	cfg := synthConfig(t, powergrid.IEEE14(), 7, 2)
	// Give one link an explicit pairwise profile to rotate: RSA grants
	// both Authenticates and IntegrityProtects at >= 2048 bits.
	l := cfg.Net.Links()[0]
	l.Profiles = []secpolicy.Profile{{Algo: secpolicy.RSA, KeyBits: 4096}}

	cache := NewEncodingCache(CacheWithDelta())
	opts := []Option{WithEncodingCache(cache)}
	a, err := NewAnalyzer(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Property: SecuredObservability, Combined: true, K: 1}
	if _, err := a.Verify(q); err != nil {
		t.Fatal(err)
	}

	// 4096 -> 2048 bits: still above the RSA threshold, same judgement —
	// the canonical config changes, but every group signature survives.
	rot, _, err := cfg.Apply(scadanet.Delta{Ops: []scadanet.Op{
		{Kind: scadanet.OpKeyRotate, Link: l.ID, KeyBits: 2048},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := cache.Mutate(cfg, rot, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ms.DeltaReencoded != 0 {
		t.Fatalf("same-judgement key rotation re-encoded %d groups, want 0", ms.DeltaReencoded)
	}

	// 2048 -> 1024 bits: below threshold, the hop loses the secured
	// judgement — the pair group must re-encode and the verdicts must
	// track a cold run.
	weak, _, err := rot.Apply(scadanet.Delta{Ops: []scadanet.Op{
		{Kind: scadanet.OpKeyRotate, Link: l.ID, KeyBits: 1024},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ms, err = cache.Mutate(rot, weak, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if ms.DeltaReencoded == 0 {
		t.Fatal("judgement-flipping key rotation re-encoded nothing")
	}
	inc, err := NewAnalyzer(weak, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewAnalyzer(weak)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := inc.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cold.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Status != rc.Status {
		t.Fatalf("weak-key verdict: incremental %v, cold %v", ri.Status, rc.Status)
	}
}
