package core

import (
	"fmt"
	"sort"
	"time"

	"scadaver/internal/logic"
	"scadaver/internal/sat"
	"scadaver/internal/sat/drat"
	"scadaver/internal/scadanet"
)

// WithCertification makes every Verify and Sweep verdict of this
// analyzer carry its own evidence instead of being trusted on the
// solver's word (DESIGN.md §15):
//
//   - The solve is proof-logged from the encoder's birth: a DRAT-style
//     checker (internal/sat/drat) replays every input clause and every
//     derived addition — CDCL learning, preprocessing resolvents,
//     strengthenings and failed literals included — as the solver emits
//     them, so an Unsat answer is accepted only if the checker can
//     certify the refutation (the empty clause for asserted budgets,
//     RUP-ness of the negated budget assumption for Sweep).
//   - A Sat answer is audited twice: the reported threat vector must
//     violate the property under the direct evaluator within its
//     failure budget, and the solver's full named model must satisfy a
//     pristine re-encode of the query (fresh encoder, no preprocessing,
//     no cache) solved under the model as unit assumptions.
//   - Any divergence quarantines the query: one pristine re-solve with
//     preprocessing, portfolio and cache all disabled, itself
//     proof-checked, whose verdict replaces the suspect one.
//
// Certification bypasses the encoding cache for the certified solve
// (the proof must start at clause one of this query's formula, not in
// the middle of a shared snapshot's life) but leaves preprocessing and
// portfolio escalation on: both are proof-logged, which is the point.
// Threat enumeration (EnumerateThreats) is not certified — its blocking
// clauses change the formula mid-stream; certify the individual
// verdicts via Verify instead. Overhead is measured in EXPERIMENTS.md
// §R3.
func WithCertification(on bool) Option {
	return func(a *Analyzer) { a.certify = on }
}

// certState is the certification context of one proof-logged solve: the
// in-process DRAT checker receiving the solver's proof stream.
type certState struct {
	checker *drat.Checker
}

// newEncoder builds the encoder for a structural encoding, arming the
// pending proof sink — if certification installed one — on the fresh
// solver before any clause is asserted. logic.Encoder encodes eagerly
// (Assert adds clauses to the solver immediately), so the hook must be
// in place at encoder birth or the checker would miss input clauses.
func (a *Analyzer) newEncoder() *logic.Encoder {
	enc := logic.NewEncoder()
	if a.proofSink != nil {
		enc.Solver().SetProofHook(a.proofSink)
	}
	return enc
}

// beginCertify starts a certified solve: it creates the proof checker
// and installs it as the analyzer's pending proof sink, to be picked up
// by the next newEncoder call. Returns nil when certification is off.
// The fault plan's proof-truncation hook, when armed, is interposed
// between solver and checker so chaos tests can corrupt the stream.
func (a *Analyzer) beginCertify() *certState {
	if !a.certify {
		return nil
	}
	c := &certState{checker: drat.New()}
	var w sat.ProofWriter = c.checker
	if drop := a.faults.ProofDropHook(); drop != nil {
		w = proofDropper{drop: drop, next: c.checker}
	}
	a.proofSink = w
	return c
}

// proofDropper interposes the fault plan's proof-truncation predicate
// in front of the certification checker: once it fires, derived clause
// additions stop reaching the checker (inputs and deletions still
// flow), modeling a proof writer that silently lost derivation steps.
type proofDropper struct {
	drop func() bool
	next sat.ProofWriter
}

// Step implements sat.ProofWriter.
func (p proofDropper) Step(op sat.ProofOp, lits []sat.Lit) {
	if op == sat.ProofAdd && p.drop() {
		return
	}
	p.next.Step(op, lits)
}

// corruptStatus applies the fault plan's verdict-flip fault to a
// decided solve status. Undecided statuses are never flipped (there is
// no wrong answer to inject into "I don't know").
func (a *Analyzer) corruptStatus(st sat.Status) sat.Status {
	if st == sat.Unsolved || !a.faults.CorruptVerdict() {
		return st
	}
	if st == sat.Sat {
		return sat.Unsat
	}
	return sat.Sat
}

// corruptVector applies the fault plan's model corruption to a decoded
// threat vector: the first failed element is dropped — an inclusion-
// minimal witness stops violating the property once any element is
// removed, so the corruption is guaranteed to be wrong — or, for an
// empty vector, the first healthy IED is added.
func (a *Analyzer) corruptVector(v *ThreatVector) {
	switch {
	case len(v.IEDs) > 0:
		v.IEDs = v.IEDs[1:]
	case len(v.RTUs) > 0:
		v.RTUs = v.RTUs[1:]
	case len(v.Links) > 0:
		v.Links = v.Links[1:]
	default:
		for _, d := range a.fieldIEDs {
			if !d.Down {
				v.IEDs = append(v.IEDs, d.ID)
				break
			}
		}
	}
}

// certifyResult audits one decided verdict against its proof stream and
// the direct evaluator, quarantining on divergence. assumptions are the
// solver literals the solve assumed (the budget counter for Sweep;
// empty when the budget was asserted): an Unsat-under-assumptions
// answer is certified by RUP-ness of the negated assumption clause
// rather than by the empty clause. Undecided verdicts are not audited —
// there is no claim to certify.
func (a *Analyzer) certifyResult(q Query, enc *logic.Encoder, cert *certState, assumptions []sat.Lit, res *Result) {
	t0 := time.Now()
	defer func() { res.Audit = time.Since(t0) }()
	res.ProofClauses = uint64(cert.checker.Additions())
	if res.Status == sat.Unsolved {
		return
	}
	pl := map[string]string{"property": q.Property.String()}
	a.metrics.Inc("scadaver_certify_checked_total", pl)
	var err error
	switch res.Status {
	case sat.Sat:
		err = a.auditSat(q, enc, res)
	case sat.Unsat:
		err = auditUnsat(cert.checker, assumptions)
	}
	if err == nil {
		res.Certified = true
		return
	}
	a.metrics.Inc("scadaver_certify_failed_total", pl)
	a.quarantine(q, res, err)
}

// auditSat checks a Sat verdict from two independent directions: the
// reported (minimized) threat vector must fit the failure budget and
// violate the property under the direct evaluator, and the solver's
// full named model — including values the preprocessor's variable
// elimination reconstructed — must satisfy a pristine re-encode of the
// query solved under that model as unit assumptions.
func (a *Analyzer) auditSat(q Query, enc *logic.Encoder, res *Result) error {
	if res.Vector == nil {
		return fmt.Errorf("core: certify: sat verdict carries no threat vector")
	}
	v := *res.Vector
	if q.Combined {
		if n := len(v.IEDs) + len(v.RTUs); n > q.K {
			return fmt.Errorf("core: certify: vector has %d device failures, budget K=%d", n, q.K)
		}
	} else {
		if len(v.IEDs) > q.K1 || len(v.RTUs) > q.K2 {
			return fmt.Errorf("core: certify: vector has (%d,%d) failures, budget (K1=%d,K2=%d)",
				len(v.IEDs), len(v.RTUs), q.K1, q.K2)
		}
	}
	if len(v.Links) > q.KL {
		return fmt.Errorf("core: certify: vector has %d link failures, budget KL=%d", len(v.Links), q.KL)
	}
	f := Failures{Devices: map[scadanet.DeviceID]bool{}, Links: map[scadanet.LinkID]bool{}}
	for _, id := range v.Devices() {
		f.Devices[id] = true
	}
	for _, id := range v.Links {
		f.Links[id] = true
	}
	if !a.violatedUnder(q, f) {
		return fmt.Errorf("core: certify: vector %v does not violate %v under the direct evaluator", v, q)
	}
	model := enc.Model()
	names := make([]string, 0, len(model))
	for name := range model {
		names = append(names, name)
	}
	sort.Strings(names)
	assumptions := make([]*logic.Formula, 0, len(names))
	for _, name := range names {
		t := logic.V(name)
		if !model[name] {
			t = logic.Not(t)
		}
		assumptions = append(assumptions, t)
	}
	penc := a.encode(q)
	if st := penc.Solve(assumptions...); st != sat.Sat {
		return fmt.Errorf("core: certify: pristine re-encode is %v under the solver model", st)
	}
	return nil
}

// auditUnsat checks an Unsat verdict against the replayed proof: the
// checker must have accepted every step, and the refutation must be
// closed — the empty clause for asserted budgets, or the negated
// assumption clause shown RUP for assumption-based solves (any model of
// the formula satisfying the assumptions would contradict a RUP
// consequence, so none exists).
func auditUnsat(ck *drat.Checker, assumptions []sat.Lit) error {
	if err := ck.Err(); err != nil {
		return fmt.Errorf("core: certify: proof step rejected: %w", err)
	}
	if err := ck.VerifyUnsat(assumptions...); err != nil {
		return fmt.Errorf("core: certify: refutation not certified: %w", err)
	}
	return nil
}

// quarantine handles a certification divergence: the suspect verdict is
// discarded and the query re-solved from a pristine encoding —
// preprocessing, portfolio and cache all off, serial, itself
// proof-checked — whose verdict replaces the reported one. The
// re-solve is bounded by the analyzer's conflict budget and interrupt
// only; fault-injection hooks are deliberately not re-armed, so an
// injected corruption cannot survive its own quarantine.
func (a *Analyzer) quarantine(q Query, res *Result, cause error) {
	pl := map[string]string{"property": q.Property.String()}
	a.metrics.Inc("scadaver_certify_quarantine_total", pl)
	res.Quarantined = true
	res.CertifyError = cause.Error()

	ck := drat.New()
	a.proofSink = ck
	enc := a.encode(q)
	a.proofSink = nil
	s := enc.Solver()
	s.SetConflictBudget(a.conflictBudget)
	s.SetInterrupt(a.interrupt)
	st := enc.Solve()
	s.SetConflictBudget(0)
	s.SetInterrupt(nil)

	orig := res.Status
	var verr error
	switch st {
	case sat.Sat:
		res.Status = sat.Sat
		v := a.extractVector(q, enc)
		v = a.minimizeVector(q, v)
		res.Vector = &v
		verr = a.auditSat(q, enc, res)
	case sat.Unsat:
		res.Status = sat.Unsat
		res.Vector = nil
		verr = auditUnsat(ck, nil)
	default:
		verr = fmt.Errorf("core: certify: quarantine re-solve undecided")
	}
	if st != sat.Unsolved && st != orig {
		a.metrics.Inc("scadaver_certify_divergence_total", pl)
	}
	res.ProofClauses = uint64(ck.Additions())
	res.Certified = verr == nil
	if verr != nil {
		res.CertifyError = fmt.Sprintf("%v; quarantine: %v", cause, verr)
	}
}
