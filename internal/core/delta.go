package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"scadaver/internal/logic"
	"scadaver/internal/sat"
	"scadaver/internal/scadanet"
	"scadaver/internal/secpolicy"
)

// The delta-aware encoding cache (DESIGN.md §16). In delta mode every
// cached structural encoding is built as a set of GUARDED constraint
// groups on an evolvable "master" encoder: each group's clauses carry a
// fresh activation literal (logic.AssertGuarded), so while the selector
// is free the group is inert and the master is a sound weakening of
// every configuration version it has ever encoded. Queries never solve
// the master directly — they clone a "sealed" snapshot: a root-level
// clone of the master with the active selectors asserted true, retired
// selectors asserted false, and the learnt-clause stash re-imported
// under a RUP check (sat.ImportLearnts).
//
// When the configuration mutates, EncodingCache.Mutate diffs the
// desired group inventory (recomputed from the new configuration)
// against the active groups by content signature: groups whose
// signature is unchanged survive verbatim (DeltaReuse), changed or
// vanished groups are retired — their selector is the off switch, the
// clauses are never rebuilt in place — and replacements are encoded
// fresh on the master (DeltaReencoded). Only the dirty cone re-encodes:
// per-measurement delivery and the property constraint are defined over
// named indirection variables (Del_<ied>, Dz_<z>), so the dominant
// property encoding survives every supported mutation unchanged.
//
// Soundness of the carryover is layered: the stash is pruned of clauses
// mentioning dirty-cone variables (the issue's import filter), and
// every surviving candidate must still pass reverse unit propagation
// against the NEW sealed database before it is admitted — variable
// filtering alone is not sound, because resolution can launder a dirty
// dependency into a clause over clean variables.

// MutationStats reports what one cache mutation did: how many guarded
// constraint groups survived verbatim, how many re-encoded, how many
// learnt clauses carried over into the new sealed snapshots, and how
// many cache entries evolved.
type MutationStats struct {
	DeltaReuse     uint64 `json:"deltaReuse"`
	DeltaReencoded uint64 `json:"deltaReencoded"`
	CarriedLearnts uint64 `json:"carriedLearnts"`
	Entries        int    `json:"entries"`
}

func (m *MutationStats) add(o MutationStats) {
	m.DeltaReuse += o.DeltaReuse
	m.DeltaReencoded += o.DeltaReencoded
	m.CarriedLearnts += o.CarriedLearnts
}

// Learnt-clause carryover bounds: only short clauses transfer (long
// ones rarely prune a different search), per-query harvests are capped,
// and the stash is a bounded FIFO so a long-lived config's stash cannot
// grow without limit.
const (
	carryMaxLen   = 8
	carryPerSolve = 64
	carryStash    = 512

	// queryProbeLimit bounds per-query failed-literal probing on delta
	// snapshots (see Analyzer.verify). Probing low-numbered variables
	// covers the named structural interface on typical encodings; a
	// higher bound chases auxiliary variables for little return.
	queryProbeLimit = 256
)

// delVar names the delivery indirection term of an IED in delta mode.
func delVar(id scadanet.DeviceID) *logic.Formula { return logic.Vf("Del_%d", id) }

// dzVar names the delivered-measurement indirection term in delta mode.
func dzVar(z int) *logic.Formula { return logic.Vf("Dz_%d", z) }

// groupSpec is the desired content of one guarded constraint group for
// a given configuration: a content signature (equal signature ⇒ the
// already-encoded group is still exactly right), the named variables
// the group owns (they join the dirty cone when it retires), and the
// formula, built lazily so re-used groups never construct it.
type groupSpec struct {
	sig   string
	named []string
	form  func() *logic.Formula
}

// deltaGroup is one encoded guarded group on the master: its selector,
// the fresh-variable range its encoding allocated, and the bookkeeping
// needed to retire it into the dirty cone.
type deltaGroup struct {
	key          string
	sig          string
	sel          string
	selVar       sat.Var
	auxLo, auxHi int
	named        []string
}

// deltaState is the evolvable half of one cache entry: the master
// encoder with all guarded groups ever encoded, the active/retired
// partition, the current sealed snapshot queries clone, and the learnt
// stash. One deltaState follows a configuration lineage across
// mutations (it moves to the new fingerprint's entry on Mutate); the
// superseded entry keeps its sealed snapshot but loses evolvability.
type deltaState struct {
	mu      sync.Mutex
	probe   Query
	master  *logic.Encoder
	groups  map[string]*deltaGroup
	retired []*deltaGroup
	nextSel int
	presimp bool // re-simplify each sealed snapshot under its selector units

	sealed     *logic.Encoder
	sealedVars int

	stash     [][]sat.Lit
	stashSeen map[string]bool

	// Branching heuristics harvested from the most recent finished query
	// (phases + activity over the shared structural variables), adopted
	// by the next sealed snapshot. Purely heuristic, so unconditionally
	// sound to transplant — and since consecutive generations differ by
	// one dirty cone, the previous search's hot variables and satisfying
	// phases are nearly right for the next instance.
	phases   []bool
	activity []float64

	// pending accumulates mutation counters until the first query that
	// consumes the evolved snapshot claims them into its Result.Phases,
	// mirroring how the builder query attributes one-off preprocessing.
	pending    MutationStats
	hasPending bool
}

// deltaGroupSpecs computes the desired guarded-group inventory for the
// analyzer's configuration under the snapshot probe query. Group keys
// are stable across configurations (dev:<id>, lnk:<id>, pair:<id>,
// del:<ied>, dz:<z>, card, prop); signatures capture exactly the
// configuration content each group encodes, so the Mutate diff is
// driven by content, not by guessing which ops touch which groups.
func (a *Analyzer) deltaGroupSpecs(q Query) map[string]groupSpec {
	secured := q.Property != Observability
	specs := make(map[string]groupSpec)

	// dev:<id> — statically-down field devices. Healthy devices assert
	// nothing (their availability is a free search variable), so a group
	// exists only while the device is down.
	for _, d := range append(append([]*scadanet.Device(nil), a.fieldIEDs...), a.fieldRTUs...) {
		if !d.Down {
			continue
		}
		id := d.ID
		specs[fmt.Sprintf("dev:%d", id)] = groupSpec{
			sig:   "down",
			named: []string{fmt.Sprintf("Node_%d", id)},
			form:  func() *logic.Formula { return logic.Not(nodeVar(id)) },
		}
	}

	// lnk:<id> — per-link status, and card — the link-failure
	// cardinality over healthy links when the probe has a link budget
	// (healthy links are then free and belong to the card group).
	var healthy []scadanet.LinkID
	for _, l := range a.cfg.Net.Links() {
		lid := l.ID
		linkName := []string{fmt.Sprintf("Link_%d", lid)}
		switch {
		case l.Down:
			specs[fmt.Sprintf("lnk:%d", lid)] = groupSpec{
				sig:   "down",
				named: linkName,
				form:  func() *logic.Formula { return logic.Not(linkVar(lid)) },
			}
		case q.KL > 0:
			healthy = append(healthy, lid)
		default:
			specs[fmt.Sprintf("lnk:%d", lid)] = groupSpec{
				sig:   "up",
				named: linkName,
				form:  func() *logic.Formula { return linkVar(lid) },
			}
		}

		// pair:<id> — the static per-hop pairing (and, secured, the
		// authentication/integrity) judgements. The signature is over the
		// judged booleans, so a key rotation that does not flip any
		// judgement reuses the group — which is semantically exact.
		protoOK, cryptoOK := a.cfg.Net.HopPairing(l)
		secOK := false
		named := []string{fmt.Sprintf("Pair_%d", lid)}
		if secured {
			caps := a.cfg.Net.HopCaps(l, a.policy)
			secOK = caps.Has(secpolicy.Authenticates | secpolicy.IntegrityProtects)
			named = append(named, fmt.Sprintf("Sec_%d", lid))
		}
		specs[fmt.Sprintf("pair:%d", lid)] = groupSpec{
			sig:   fmt.Sprintf("p%t|c%t|s%t", protoOK, cryptoOK, secOK),
			named: named,
			form: func() *logic.Formula {
				f := logic.Iff(pairVar(lid), logic.Const(protoOK && cryptoOK))
				if secured {
					f = logic.And(f, logic.Iff(secVar(lid), logic.Const(secOK)))
				}
				return f
			},
		}
	}
	if q.KL > 0 {
		ids := append([]scadanet.LinkID(nil), healthy...)
		sortLinkIDs(ids)
		named := make([]string, len(ids))
		for i, lid := range ids {
			named[i] = fmt.Sprintf("Link_%d", lid)
		}
		kl := q.KL
		specs["card"] = groupSpec{
			sig:   fmt.Sprintf("kl%d|%v", kl, ids),
			named: named,
			form: func() *logic.Formula {
				fails := make([]*logic.Formula, len(ids))
				for i, lid := range ids {
					fails[i] = logic.Not(linkVar(lid))
				}
				return logic.AtMost(kl, fails...)
			},
		}
	}

	// del:<ied> — the delivery definition, bound to a named indirection
	// variable so downstream groups reference Del_<ied> instead of the
	// path formula. The signature hashes the enumerated path set (as
	// link-ID sequences), so only IEDs whose path set actually changed
	// re-encode after a topology mutation.
	for _, d := range a.fieldIEDs {
		ied := d.ID
		h := sha256.New()
		fmt.Fprintf(h, "sec=%t", secured)
		for _, path := range a.cfg.Net.Paths(ied, a.maxPaths) {
			for _, l := range path {
				fmt.Fprintf(h, "|%d", l.ID)
			}
			fmt.Fprint(h, ";")
		}
		specs[fmt.Sprintf("del:%d", ied)] = groupSpec{
			sig:   hex.EncodeToString(h.Sum(nil)[:12]),
			named: []string{fmt.Sprintf("Del_%d", ied)},
			form: func() *logic.Formula {
				return logic.Iff(delVar(ied), a.deliveryFormula(ied, secured))
			},
		}
	}

	// dz:<z> — measurement delivery over the senders' Del terms. The
	// sender assignment never mutates, so these survive every delta.
	for z := 1; z <= a.cfg.Msrs.Len(); z++ {
		zz := z
		senders := a.senders[z]
		specs[fmt.Sprintf("dz:%d", z)] = groupSpec{
			sig:   fmt.Sprintf("%v", senders),
			named: []string{fmt.Sprintf("Dz_%d", z)},
			form: func() *logic.Formula {
				alts := make([]*logic.Formula, len(senders))
				for i, ied := range senders {
					alts[i] = delVar(ied)
				}
				return logic.Iff(dzVar(zz), logic.Or(alts...))
			},
		}
	}

	// prop — the negated property over the Dz indirection. Its content
	// depends only on the measurement model and the probe, both immutable
	// under the mutation API, so the dominant constraint never re-encodes.
	specs["prop"] = groupSpec{
		sig: "v1",
		form: func() *logic.Formula {
			delivered := make([]*logic.Formula, a.cfg.Msrs.Len()+1)
			for z := 1; z <= a.cfg.Msrs.Len(); z++ {
				delivered[z] = dzVar(z)
			}
			return a.violationFormula(q, delivered)
		},
	}
	return specs
}

// buildDeltaState encodes the full guarded-group inventory on a fresh
// master, optionally presimplifies it (sound: with every selector free
// the master weakens every version, and selectors are named and thereby
// frozen), and seals the first snapshot.
func (a *Analyzer) buildDeltaState(probe Query) *deltaState {
	st := &deltaState{
		probe:     probe,
		master:    a.newEncoder(),
		groups:    make(map[string]*deltaGroup),
		stashSeen: make(map[string]bool),
		presimp:   a.presimplify,
	}
	specs := a.deltaGroupSpecs(probe)
	for _, key := range sortedSpecKeys(specs) {
		st.encodeGroup(key, specs[key])
	}
	if a.presimplify {
		st.master.Simplify()
	}
	st.seal()
	return st
}

// encodeGroup asserts one guarded group on the master under a fresh
// selector, recording the fresh-variable range the encoding allocated.
// New groups encoded after a master Simplify are safe: they mention
// only frozen named variables and brand-new auxiliaries, and the
// encoder's formula memo is pointer-keyed over freshly-built formulas,
// so no eliminated auxiliary can leak in.
func (st *deltaState) encodeGroup(key string, spec groupSpec) {
	selName := fmt.Sprintf("__sel_%d", st.nextSel)
	st.nextSel++
	selVar := st.master.VarLit(selName).Var()
	lo := st.master.Solver().NumVars()
	st.master.AssertGuarded(logic.V(selName), spec.form())
	g := &deltaGroup{
		key:    key,
		sig:    spec.sig,
		sel:    selName,
		selVar: selVar,
		auxLo:  lo,
		auxHi:  st.master.Solver().NumVars(),
		named:  spec.named,
	}
	st.groups[key] = g
}

// seal builds the next immutable snapshot: a clone of the master with
// active selectors asserted, retired selectors negated (optional for
// soundness — retired clauses are inert either way — but it keeps the
// search from wandering into dead groups), and the learnt stash
// re-imported under ImportLearnts' RUP gate. Returns how many learnts
// carried over. Callers hold st.mu (or own st exclusively).
//
// Under presimplify the snapshot is additionally reduced AFTER the
// selector asserts: the master was simplified with every selector free,
// so its guarded clauses still carry the ¬sel literals. With the
// selectors now root units, ReduceRoot specializes (¬sel ∨ C) back to C
// and deletes retired groups outright, so per-query solves run on a CNF
// as tight as a cold presimplified encode — at unit-propagation cost,
// not a full preprocessing pass (a per-seal Simplify costs more than
// the cold re-encode it is meant to beat). Sound for the same reason
// asserting the selectors is: the snapshot IS the formula under those
// units. A false return (root UNSAT) is kept — queries on an
// unsatisfiable snapshot answer UNSAT, which is the truth.
func (st *deltaState) seal() int {
	enc := st.master.Clone()
	for _, key := range sortedGroupKeys(st.groups) {
		enc.Assert(logic.V(st.groups[key].sel))
	}
	for _, g := range st.retired {
		enc.Assert(logic.Not(logic.V(g.sel)))
	}
	if st.presimp {
		enc.Solver().ReduceRoot()
	}
	carried := enc.Solver().ImportLearnts(st.stash)
	if st.phases != nil {
		enc.Solver().AdoptPhases(st.phases)
	}
	st.sealed = enc
	st.sealedVars = enc.Solver().NumVars()
	return carried
}

// harvest copies short learnt clauses out of a finished query's private
// clone into the stash. Only clauses entirely over the sealed
// snapshot's variables are taken: everything at or above maxVar is a
// per-query budget auxiliary, whose definitional clauses are a
// conservative extension, so a harvested clause over structural
// variables is implied by the sealed database alone.
func (st *deltaState) harvest(enc *logic.Encoder, maxVar int) {
	cands := enc.Solver().HarvestLearnts(maxVar, carryMaxLen, carryPerSolve)
	phases := enc.Solver().SavedPhases(maxVar)
	activity := enc.Solver().SavedActivity(maxVar)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.phases, st.activity = phases, activity
	if len(cands) == 0 {
		return
	}
	for _, c := range cands {
		k := clauseKey(c)
		if st.stashSeen[k] {
			continue
		}
		st.stashSeen[k] = true
		st.stash = append(st.stash, c)
	}
	for len(st.stash) > carryStash {
		delete(st.stashSeen, clauseKey(st.stash[0]))
		st.stash = st.stash[1:]
	}
}

// evolve diffs the desired inventory of the mutated configuration
// against the active groups, retires the dirty cone, encodes the
// replacements, prunes the stash of dirty clauses, and reseals.
func (st *deltaState) evolve(next *Analyzer) MutationStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	next.faults.BeforeMutation()

	specs := next.deltaGroupSpecs(st.probe)
	var ms MutationStats
	dirty := make(map[sat.Var]bool)
	for _, key := range sortedGroupKeys(st.groups) {
		g := st.groups[key]
		if spec, ok := specs[key]; ok && spec.sig == g.sig {
			ms.DeltaReuse++
			continue
		}
		// Retire: the selector is the off switch; the clauses stay in the
		// master, permanently disabled by ¬sel in every later seal.
		dirty[g.selVar] = true
		for v := g.auxLo; v < g.auxHi; v++ {
			dirty[sat.Var(v)] = true
		}
		for _, name := range g.named {
			dirty[st.master.VarLit(name).Var()] = true
		}
		st.retired = append(st.retired, g)
		delete(st.groups, key)
	}
	for _, key := range sortedSpecKeys(specs) {
		if _, ok := st.groups[key]; ok {
			continue
		}
		st.encodeGroup(key, specs[key])
		ms.DeltaReencoded++
	}

	// The issue's dirty-variable import filter: clauses mentioning any
	// retired variable are dropped from the stash before the RUP-gated
	// re-import (which alone would be sound, but would waste its budget
	// re-checking clauses that are known to be from the dirty cone).
	if len(dirty) > 0 {
		kept := st.stash[:0]
		for _, c := range st.stash {
			clean := true
			for _, l := range c {
				if dirty[l.Var()] {
					clean = false
					break
				}
			}
			if clean {
				kept = append(kept, c)
			} else {
				delete(st.stashSeen, clauseKey(c))
			}
		}
		st.stash = kept
	}

	ms.CarriedLearnts = uint64(st.seal())
	st.pending.add(ms)
	st.hasPending = true
	return ms
}

// claim transfers the pending mutation counters to the first caller
// after an evolution (the query that consumes the evolved snapshot).
func (st *deltaState) claim() (MutationStats, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.hasPending {
		return MutationStats{}, false
	}
	ms := st.pending
	st.pending = MutationStats{}
	st.hasPending = false
	return ms, true
}

// activeGroups reports how many guarded groups are currently active.
func (st *deltaState) activeGroups() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.groups)
}

func clauseKey(c []sat.Lit) string {
	sorted := append([]sat.Lit(nil), c...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("%v", sorted)
}

func sortedSpecKeys(m map[string]groupSpec) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedGroupKeys(m map[string]*deltaGroup) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
