package serve

import (
	"sync"
	"time"
)

// Breaker states. The breaker sheds load before the service collapses:
// when the rolling failure rate (unsolved results and worker panics)
// crosses the threshold it opens, admission rejects new work, and
// /readyz turns unready so load balancers stop routing here. After a
// cooldown it half-opens and admits a single probe request; the probe's
// outcome decides between closing again and another cooldown.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerOptions tunes the service breaker; the zero value selects the
// defaults noted per field.
type breakerOptions struct {
	// Window is the number of most recent request outcomes the failure
	// rate is computed over (default 32).
	Window int
	// Threshold is the failure rate in [0,1] that opens the breaker
	// (default 0.5).
	Threshold float64
	// MinSamples gates opening until the window holds at least this
	// many outcomes, so one early failure cannot open a cold breaker
	// (default Window/4, at least 4).
	MinSamples int
	// Cooldown is how long the breaker stays open before half-opening
	// for a probe (default 5s).
	Cooldown time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

func (o breakerOptions) withDefaults() breakerOptions {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.Threshold <= 0 || o.Threshold > 1 {
		o.Threshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = max(4, o.Window/4)
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// breaker is a rolling-window circuit breaker over request outcomes.
// All methods are safe for concurrent use.
type breaker struct {
	opts breakerOptions

	mu       sync.Mutex
	state    int
	openedAt time.Time
	probing  bool // half-open: the single probe slot is taken
	ring     []bool
	idx      int
	filled   int
	fails    int
	onOpen   func(open bool) // state-change hook (breaker_open gauge)
}

func newBreaker(opts breakerOptions, onOpen func(bool)) *breaker {
	opts = opts.withDefaults()
	if onOpen == nil {
		onOpen = func(bool) {}
	}
	return &breaker{opts: opts, ring: make([]bool, opts.Window), onOpen: onOpen}
}

// Allow reports whether admission may accept a request right now. In
// the open state it returns false until the cooldown elapses, then
// half-opens and grants exactly one probe slot; the probe's Record
// decides the next state.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.opts.now().Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one finished request outcome into the rolling window and
// drives the state machine: a half-open probe failure re-opens, a probe
// success closes and resets the window; in the closed state crossing
// the failure-rate threshold opens.
func (b *breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()

	if b.state == breakerHalfOpen {
		b.probing = false
		if failure {
			b.open()
		} else {
			b.close()
		}
		return
	}

	if b.filled == len(b.ring) {
		if b.ring[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.ring[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)

	if b.state == breakerClosed && b.filled >= b.opts.MinSamples &&
		float64(b.fails)/float64(b.filled) >= b.opts.Threshold {
		b.open()
	}
}

// Cancel releases an Allow that will never reach Record — the request
// was shed later in the admission pipeline (queue full, drain race).
// Without it a half-open probe slot taken by a shed request would stay
// occupied forever and the breaker could never recover.
func (b *breaker) Cancel() {
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// Open reports whether the breaker is currently open (half-open counts
// as not open: the service is probing its way back to ready).
func (b *breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.opts.now().Sub(b.openedAt) >= b.opts.Cooldown {
		// Cooldown elapsed: report ready so traffic returns and the
		// next admission runs the half-open probe.
		return false
	}
	return b.state == breakerOpen
}

// open transitions to the open state (callers hold b.mu).
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.opts.now()
	b.onOpen(true)
}

// close transitions to the closed state with a fresh window (callers
// hold b.mu).
func (b *breaker) close() {
	b.state = breakerClosed
	b.idx, b.filled, b.fails = 0, 0, 0
	for i := range b.ring {
		b.ring[i] = false
	}
	b.onOpen(false)
}
