package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPrometheusHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Inc("scadaver_queries_total", map[string]string{"status": "unsat"})
	r.SetGauge("scadaver_queue_depth", nil, 3)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if got := rec.Header().Get("Content-Type"); got != ContentTypePrometheus {
		t.Fatalf("Content-Type = %q, want %q", got, ContentTypePrometheus)
	}
	if !strings.Contains(rec.Header().Get("Content-Type"), "version=0.0.4") {
		t.Fatal("Prometheus content type lacks the exposition-format version")
	}
	body := rec.Body.String()
	for _, want := range []string{
		`scadaver_queries_total{status="unsat"} 1`,
		"# TYPE scadaver_queue_depth gauge",
		"scadaver_queue_depth 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestJSONHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Inc("scadaver_queries_total", nil)
	r.SetGauge("scadaver_inflight", nil, 2)

	rec := httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))

	if got := rec.Header().Get("Content-Type"); got != ContentTypeJSON {
		t.Fatalf("Content-Type = %q, want %q", got, ContentTypeJSON)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, rec.Body.String())
	}
	if len(snap.Counters) != 1 || len(snap.Gauges) != 1 {
		t.Fatalf("snapshot = %d counters, %d gauges; want 1 and 1", len(snap.Counters), len(snap.Gauges))
	}
	if snap.Gauges[0].Name != "scadaver_inflight" || snap.Gauges[0].Value != 2 {
		t.Fatalf("gauge snapshot = %+v", snap.Gauges[0])
	}
}

func TestGaugeLastWriteWins(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("depth", nil, 5)
	r.SetGauge("depth", nil, 2)
	if got := r.Gauge("depth", nil); got != 2 {
		t.Fatalf("Gauge = %v, want last-written 2", got)
	}
	r.SetGauge("depth", map[string]string{"q": "a"}, 7)
	if got := r.Gauge("depth", map[string]string{"q": "a"}); got != 7 {
		t.Fatalf("labeled Gauge = %v, want 7", got)
	}
	if got := r.Gauge("missing", nil); got != 0 {
		t.Fatalf("missing Gauge = %v, want 0", got)
	}
}

func TestNilRegistryGaugeIsNoOp(t *testing.T) {
	var r *Registry
	r.SetGauge("depth", nil, 1) // must not panic
	if got := r.Gauge("depth", nil); got != 0 {
		t.Fatalf("nil-registry Gauge = %v, want 0", got)
	}
}
