// False-data injection: why the paper trusts only secured measurements.
//
// An attacker sits on two uplinks of the 5-bus case-study system and
// rewrites one measurement in flight:
//
//   - IED 1's uplink carries plain frames (its profile is hmac-only in
//     Table II, which the policy does not accept as integrity
//     protection — here it is modeled as an unauthenticated channel at
//     the wire level): the tampered value sails through CRC checks and
//     biases the state estimate.
//   - IED 5's uplink runs a secure session (HMAC-SHA-256 integrity
//     tags per DNP3-SA): the same tampering is detected, the frame is
//     dropped, and the estimate stays clean.
//
// The formal verifier predicts the exposure from configuration alone:
// measurements of IED 1 are delivered but NOT securely delivered.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"scadaver/internal/core"
	"scadaver/internal/icsproto"
	"scadaver/internal/scadanet"
	"scadaver/internal/stateest"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		return err
	}
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}

	// What the verifier says about the two IEDs.
	delivered := analyzer.DeliveredMeasurements(nil, false)
	secured := analyzer.DeliveredMeasurements(nil, true)
	for _, ied := range []scadanet.DeviceID{1, 5} {
		for _, z := range cfg.Net.MeasurementsOf(ied) {
			fmt.Printf("IED %d measurement z%-2d: delivered=%v secured=%v\n",
				ied, z, delivered[z], secured[z])
		}
	}

	// Ground truth and clean measurements for the whole system.
	ms := cfg.Msrs
	est, err := stateest.New(ms, 1)
	if err != nil {
		return err
	}
	truth := []float64{0, -0.05, -0.12, -0.10, -0.08}
	sel := make([]int, ms.Len())
	for i := range sel {
		sel[i] = i
	}
	clean, err := est.Measure(truth, sel, 0, nil)
	if err != nil {
		return err
	}

	// The attacker rewrites z1 (IED 1, plain frames) and tries the same
	// on z7 (IED 5, secure session).
	authKey := bytes.Repeat([]byte{0x42}, 32)
	tamper := func(z int, sessionProtected bool) (received float64, accepted bool, err error) {
		frame := &icsproto.Frame{
			Src: 1, Dst: 13, Seq: 1,
			Payload: []icsproto.Measurement{{ID: uint16(z + 1), Value: clean[z]}},
		}
		var wire []byte
		var rx *icsproto.Session
		if sessionProtected {
			tx, err := icsproto.NewSession(authKey, nil)
			if err != nil {
				return 0, false, err
			}
			rx, err = icsproto.NewSession(authKey, nil)
			if err != nil {
				return 0, false, err
			}
			wire, err = tx.Seal(frame)
			if err != nil {
				return 0, false, err
			}
		} else {
			wire, err = frame.Marshal()
			if err != nil {
				return 0, false, err
			}
		}

		// Man-in-the-middle: replace the float value and (for the plain
		// frame) recompute the CRC so the tamper is wire-valid.
		attacked := &icsproto.Frame{
			Src: frame.Src, Dst: frame.Dst, Seq: frame.Seq,
			Payload: []icsproto.Measurement{{ID: uint16(z + 1), Value: clean[z] + 2.5}},
		}
		if sessionProtected {
			// Without the session key the attacker can only splice the
			// tampered plaintext into the sealed message body; the HMAC
			// tag no longer verifies.
			forged, err := attacked.Marshal()
			if err != nil {
				return 0, false, err
			}
			spliced := append([]byte(nil), wire[:4]...) // keep seq
			spliced = append(spliced, forged...)
			spliced = append(spliced, wire[len(wire)-32:]...) // stale tag
			if _, err := rx.Open(spliced); err != nil {
				return clean[z], false, nil // detected: MTU keeps nothing
			}
			return 0, true, fmt.Errorf("tampered frame accepted")
		}
		wire, err = attacked.Marshal()
		if err != nil {
			return 0, false, err
		}
		got, err := icsproto.Unmarshal(wire)
		if err != nil {
			return 0, false, err
		}
		return got.Payload[0].Value, true, nil
	}

	fmt.Println("\n--- attack on IED 1 (plain frames) ---")
	z1 := cfg.Net.MeasurementsOf(1)[0] - 1
	v1, accepted, err := tamper(z1, false)
	if err != nil {
		return err
	}
	fmt.Printf("tampered z%d accepted by MTU: %v (value %.3f, clean %.3f)\n",
		z1+1, accepted, v1, clean[z1])
	attackedMeasurements := append([]float64(nil), clean...)
	attackedMeasurements[z1] = v1
	res, err := est.Estimate(attackedMeasurements, nil, sel)
	if err != nil {
		return err
	}
	bias := 0.0
	for x := range truth {
		if d := math.Abs(res.Angles[x] - (truth[x] - truth[0])); d > bias {
			bias = d
		}
	}
	fmt.Printf("state-estimate bias after attack: %.4f rad (chi-square %.1f — detectable only because redundancy is high)\n",
		bias, res.ChiSquare)

	fmt.Println("\n--- same attack on IED 5 (secure session) ---")
	z7 := cfg.Net.MeasurementsOf(5)[0] - 1
	_, accepted, err = tamper(z7, true)
	if err != nil {
		return err
	}
	fmt.Printf("tampered z%d accepted by MTU: %v (integrity tag rejected the splice)\n", z7+1, accepted)

	fmt.Println("\n--- the formal view ---")
	resv, err := analyzer.Verify(core.Query{Property: core.BadDataDetectability, Combined: true, K: 1, R: 1})
	if err != nil {
		return err
	}
	fmt.Println(resv)
	return nil
}
