package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnersReplicaWalk(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"a", "b", "c"} {
		r.Add(m)
	}
	owners := r.Owners("campaign-1", 3)
	if len(owners) != 3 {
		t.Fatalf("Owners walk returned %d members, want 3", len(owners))
	}
	distinct := map[string]bool{}
	for _, o := range owners {
		distinct[o] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("replica walk repeated a member: %v", owners)
	}
	// Deterministic: the same key always walks the same order.
	for i := 0; i < 10; i++ {
		again := r.Owners("campaign-1", 3)
		for j := range owners {
			if again[j] != owners[j] {
				t.Fatalf("walk %d differs: %v vs %v", i, again, owners)
			}
		}
	}
	// Asking past the membership clamps.
	if got := r.Owners("campaign-1", 99); len(got) != 3 {
		t.Fatalf("Owners(99) = %d members, want 3", len(got))
	}
}

func TestRingBalancesKeys(t *testing.T) {
	r := NewRing(128)
	members := []string{"m1", "m2", "m3", "m4"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys; the ring is badly unbalanced (%v)",
				m, share*100, counts)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: removing
// one of n members reassigns only the keys it owned, never reshuffles
// survivors' keys among themselves.
func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"a", "b", "c", "d"} {
		r.Add(m)
	}
	const keys = 1000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}
	if !r.Remove("c") {
		t.Fatal("Remove(c) reported not present")
	}
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if before[i] == "c" {
			if after == "c" {
				t.Fatalf("key-%d still owned by the removed member", i)
			}
			continue
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner", moved)
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(0) // default vnodes
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add should report true once, false on duplicate")
	}
	if r.Remove("missing") {
		t.Fatal("Remove of an absent member reported true")
	}
	if got := r.Owner("anything"); got != "a" {
		t.Fatalf("single-member ring owner = %q, want a", got)
	}
	if got := len(r.Members()); got != 1 || r.Size() != 1 {
		t.Fatalf("membership = %d members, size %d; want 1, 1", got, r.Size())
	}
}
