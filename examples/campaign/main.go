// Campaign: replay a DoS campaign against the case-study SCADA system
// and watch the dependability timeline — then compare what actually
// happened with what the verifier guaranteed in advance.
//
// The verifier certifies the system (1,1)-resilient observable: as long
// as at most one IED and one RTU are down simultaneously, observability
// cannot be lost, no matter which devices the attacker picks. The
// campaign below first stays inside that envelope (observability holds
// at every sample, as guaranteed), then escalates beyond it and breaks
// the system.
package main

import (
	"fmt"
	"log"
	"time"

	"scadaver/internal/attacksim"
	"scadaver/internal/core"
	"scadaver/internal/scadanet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg, err := scadanet.CaseStudyConfig(false)
	if err != nil {
		return err
	}
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	res, err := analyzer.Verify(core.Query{Property: core.Observability, K1: 1, K2: 1})
	if err != nil {
		return err
	}
	fmt.Println("a-priori guarantee:", res)

	sim, err := attacksim.New(cfg)
	if err != nil {
		return err
	}

	sc := attacksim.Scenario{
		Name:    "escalating DoS",
		Horizon: 12 * time.Second,
		Step:    time.Second,
		Events: []attacksim.Event{
			// Phase 1 (inside the certified envelope): one IED, then one
			// RTU, overlapping.
			{At: 1 * time.Second, Kind: attacksim.DeviceDown, Device: 7},
			{At: 3 * time.Second, Kind: attacksim.DeviceDown, Device: 11},
			{At: 5 * time.Second, Kind: attacksim.DeviceUp, Device: 7},
			{At: 6 * time.Second, Kind: attacksim.DeviceUp, Device: 11},
			// Phase 2 (beyond the envelope): two RTUs at once.
			{At: 8 * time.Second, Kind: attacksim.DeviceDown, Device: 9},
			{At: 8 * time.Second, Kind: attacksim.DeviceDown, Device: 12},
			{At: 11 * time.Second, Kind: attacksim.DeviceUp, Device: 9},
			{At: 11 * time.Second, Kind: attacksim.DeviceUp, Device: 12},
		},
	}
	tl, err := sim.Run(sc)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-6s %-12s %-10s %-8s %-12s\n", "t", "down", "delivered", "secured", "observable")
	for _, s := range tl.Samples {
		down := "-"
		if len(s.DownDevices) > 0 {
			down = ""
			for i, d := range s.DownDevices {
				if i > 0 {
					down += ","
				}
				down += fmt.Sprint(d)
			}
		}
		fmt.Printf("%-6v %-12s %-10d %-8d %-12v\n",
			s.At, down, s.Delivered, s.Secured, s.Observable)
	}
	fmt.Printf("\nobservability availability: %.0f%%\n", 100*tl.Availability(core.Observability))
	fmt.Printf("worst concurrent failures:  %d\n", tl.WorstConcurrentFailures())
	fmt.Println("note: every sample with ≤1 IED + ≤1 RTU down stayed observable —")
	fmt.Println("exactly the envelope the unsat verdict certified.")
	return nil
}
